package watchdog

import (
	"sync"
	"time"
)

// Context is the state-synchronization channel between the main program and
// one checker (§3.1). Hooks in the main program Put values into the context
// when execution reaches the hook points; the driver ensures a checker's
// context is ready before executing it. Synchronization is strictly one-way:
// nothing a checker does to its context flows back into the main program.
//
// Values are replicated (deep-copied for the supported kinds) at Put time so
// that a checker mutating its payload cannot corrupt main-program data
// structures — the paper's context replication isolation mechanism (§5.1).
type Context struct {
	mu      sync.RWMutex
	vals    map[string]any
	ready   bool
	version uint64
	syncAt  time.Time // wall-clock time of the last hook update

	// current op tracking for liveness pinpointing
	opMu    sync.Mutex
	current Site
	inOp    bool
}

// NewContext returns an empty, not-ready context.
func NewContext() *Context {
	return &Context{vals: make(map[string]any)}
}

// Put stores a replicated copy of v under key and marks the context ready.
// It is called by watchdog hooks on the main program's execution path, so it
// must stay cheap: one lock, one shallow-or-deep copy.
func (c *Context) Put(key string, v any) {
	rv := Replicate(v)
	c.mu.Lock()
	c.vals[key] = rv
	c.ready = true
	c.version++
	c.syncAt = time.Now()
	c.mu.Unlock()
}

// PutAll stores every entry of m, as one atomic update.
func (c *Context) PutAll(m map[string]any) {
	c.mu.Lock()
	for k, v := range m {
		c.vals[k] = Replicate(v)
	}
	c.ready = true
	c.version++
	c.syncAt = time.Now()
	c.mu.Unlock()
}

// Get returns the value stored under key.
func (c *Context) Get(key string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.vals[key]
	return v, ok
}

// GetString returns the string stored under key, or "" if absent or not a
// string.
func (c *Context) GetString(key string) string {
	v, _ := c.Get(key)
	s, _ := v.(string)
	return s
}

// GetBytes returns a copy of the byte slice stored under key.
func (c *Context) GetBytes(key string) []byte {
	v, ok := c.Get(key)
	if !ok {
		return nil
	}
	b, ok := v.([]byte)
	if !ok {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// GetInt returns the int64 stored under key (accepting any integer kind put
// through Replicate), or 0 if absent.
func (c *Context) GetInt(key string) int64 {
	v, ok := c.Get(key)
	if !ok {
		return 0
	}
	switch n := v.(type) {
	case int:
		return int64(n)
	case int8:
		return int64(n)
	case int16:
		return int64(n)
	case int32:
		return int64(n)
	case int64:
		return n
	case uint:
		return int64(n)
	case uint8:
		return int64(n)
	case uint16:
		return int64(n)
	case uint32:
		return int64(n)
	case uint64:
		return int64(n)
	default:
		return 0
	}
}

// Ready reports whether the main program has populated this context. The
// driver skips checkers whose contexts are not ready, which is what prevents
// the spurious "disk flusher broken" report when kvs runs in memory-only
// mode (§3.1).
func (c *Context) Ready() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ready
}

// Version returns the number of updates applied to this context. Checkers
// can use it to avoid re-checking stale state.
func (c *Context) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// MarkReady marks the context ready without storing a value, for checkers
// that need no payload.
func (c *Context) MarkReady() {
	c.mu.Lock()
	c.ready = true
	c.version++
	c.syncAt = time.Now()
	c.mu.Unlock()
}

// LastSync returns the wall-clock time of the most recent hook update (Put,
// PutAll, or MarkReady) and whether one ever happened. Observability layers
// derive a context-staleness gauge from it: a context that stopped being
// synchronized means the main program stopped exercising the mimicked code
// path (§3.1) — either legitimately idle or itself a symptom.
func (c *Context) LastSync() (time.Time, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.syncAt, !c.syncAt.IsZero()
}

// Invalidate marks the context not-ready (e.g. after the checked component
// shuts down) without discarding values.
func (c *Context) Invalidate() {
	c.mu.Lock()
	c.ready = false
	c.mu.Unlock()
}

// Snapshot returns a copy of all stored values, used as the report payload.
func (c *Context) Snapshot() map[string]any {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]any, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// EnterOp records that the checker is about to execute the vulnerable
// operation at site. If the checker then hangs, the driver's timeout report
// pinpoints this site.
func (c *Context) EnterOp(site Site) {
	c.opMu.Lock()
	c.current = site
	c.inOp = true
	c.opMu.Unlock()
}

// ExitOp clears the current-operation marker.
func (c *Context) ExitOp() {
	c.opMu.Lock()
	c.inOp = false
	c.opMu.Unlock()
}

// CurrentOp returns the site of the vulnerable operation the checker is
// executing right now, if any.
func (c *Context) CurrentOp() (Site, bool) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	return c.current, c.inOp
}

// LastOp returns the most recently entered operation site even after the
// checker exited it.
func (c *Context) LastOp() Site {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	return c.current
}

// Replicator lets context values control their own replication. Types stored
// in contexts that are mutable should implement it.
type Replicator interface {
	// WDReplicate returns a deep copy safe for the checker to use.
	WDReplicate() any
}

// Replicate deep-copies v for the supported kinds: byte and string slices,
// string-keyed maps of basic values, and any Replicator. Immutable kinds
// (numbers, strings, bools, time.Time) are returned as-is. Other values are
// stored by reference; callers holding such values must treat them as
// read-only inside checkers.
func Replicate(v any) any {
	switch x := v.(type) {
	case nil:
		return nil
	case Replicator:
		return x.WDReplicate()
	case []byte:
		out := make([]byte, len(x))
		copy(out, x)
		return out
	case []string:
		out := make([]string, len(x))
		copy(out, x)
		return out
	case []int:
		out := make([]int, len(x))
		copy(out, x)
		return out
	case []int64:
		out := make([]int64, len(x))
		copy(out, x)
		return out
	case map[string]string:
		out := make(map[string]string, len(x))
		for k, vv := range x {
			out[k] = vv
		}
		return out
	case map[string]int64:
		out := make(map[string]int64, len(x))
		for k, vv := range x {
			out[k] = vv
		}
		return out
	default:
		return v
	}
}

// Factory hands out named contexts shared between hooks (writers) and
// checkers (readers). It mirrors the generated ContextFactory in the paper's
// Figure 3: hooks call Factory.Context("checkerName").Put(...), and the
// driver wires the same context into the checker at registration.
type Factory struct {
	mu   sync.Mutex
	ctxs map[string]*Context
}

// NewFactory returns an empty context factory.
func NewFactory() *Factory {
	return &Factory{ctxs: make(map[string]*Context)}
}

// Context returns the context registered under name, creating it on first
// use so hooks and driver registration can run in either order.
func (f *Factory) Context(name string) *Context {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.ctxs[name]
	if !ok {
		c = NewContext()
		f.ctxs[name] = c
	}
	return c
}

// Names returns the names of all contexts created so far.
func (f *Factory) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.ctxs))
	for n := range f.ctxs {
		out = append(out, n)
	}
	return out
}
