package watchdog

import (
	"sync"
	"time"

	"gowatchdog/internal/clock"
)

// AlarmGate damps alarm flapping: identical alarms — same (checker, site,
// status) — raised inside a suppression window collapse into the first one,
// and the next alarm that escapes carries the number of suppressed
// duplicates in Alarm.Flaps. Recovery handlers and the detection journal see
// a fault storm as one damped alarm instead of thousands of copies.
//
// The driver consults its gate automatically when constructed with
// WithAlarmDamping; a standalone gate can also wrap an alarm callback for
// sinks wired outside the driver (see Wrap). All methods are safe for
// concurrent use.
type AlarmGate struct {
	clk    clock.Clock
	window time.Duration

	mu         sync.Mutex
	seen       map[gateKey]*gateEntry
	suppressed int64
}

// gateKey identifies an alarm family for deduplication.
type gateKey struct {
	checker string
	site    Site
	status  Status
}

// gateEntry tracks one alarm family's last escape and suppressed count.
type gateEntry struct {
	lastEscape time.Time
	suppressed int
}

// gatePruneLimit bounds the dedup map: past this many families, entries
// whose window has long expired are dropped on the next Admit.
const gatePruneLimit = 1024

// NewAlarmGate returns a gate that suppresses duplicate alarms for window
// after each escaped alarm. A nil clock means the real clock.
func NewAlarmGate(clk clock.Clock, window time.Duration) *AlarmGate {
	if clk == nil {
		clk = clock.Real()
	}
	return &AlarmGate{clk: clk, window: window, seen: make(map[gateKey]*gateEntry)}
}

// Admit decides one alarm's fate. When the alarm escapes, the returned copy
// carries the suppressed-duplicate count in Flaps and ok is true; when it is
// suppressed, ok is false and the alarm must not be forwarded.
func (g *AlarmGate) Admit(a Alarm) (Alarm, bool) {
	key := gateKey{checker: a.Report.Checker, site: a.Report.Site, status: a.Report.Status}
	now := g.clk.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.seen[key]
	if !ok {
		if len(g.seen) >= gatePruneLimit {
			g.pruneLocked(now)
		}
		e = &gateEntry{}
		g.seen[key] = e
	} else if now.Sub(e.lastEscape) < g.window {
		e.suppressed++
		g.suppressed++
		return a, false
	}
	a.Flaps = e.suppressed
	e.suppressed = 0
	e.lastEscape = now
	return a, true
}

// pruneLocked drops families whose suppression window expired with nothing
// pending. Called with g.mu held.
func (g *AlarmGate) pruneLocked(now time.Time) {
	for k, e := range g.seen {
		if e.suppressed == 0 && now.Sub(e.lastEscape) >= g.window {
			delete(g.seen, k)
		}
	}
}

// Suppressed returns the total number of alarms the gate has swallowed.
func (g *AlarmGate) Suppressed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.suppressed
}

// Wrap returns an alarm callback that forwards only escaped alarms to fn,
// for wiring a gate in front of sinks the driver does not own.
func (g *AlarmGate) Wrap(fn func(Alarm)) func(Alarm) {
	return func(a Alarm) {
		if damped, ok := g.Admit(a); ok {
			fn(damped)
		}
	}
}
