package watchdog

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// recordingObserver captures every observer callback for assertions.
type recordingObserver struct {
	mu      sync.Mutex
	reports []observedReport
	alarms  []Alarm
}

type observedReport struct {
	rep   Report
	prev  Status
	first bool
}

func (o *recordingObserver) ObserveReport(rep Report, prev Status, first bool) {
	o.mu.Lock()
	o.reports = append(o.reports, observedReport{rep, prev, first})
	o.mu.Unlock()
}

func (o *recordingObserver) ObserveAlarm(a Alarm) {
	o.mu.Lock()
	o.alarms = append(o.alarms, a)
	o.mu.Unlock()
}

// TestObserverSeesTransitions drives a checker healthy → error → healthy and
// asserts the observer sees every execution with the correct previous status
// and first-report marker, plus the alarm.
func TestObserverSeesTransitions(t *testing.T) {
	obs := &recordingObserver{}
	d := New(WithObserver(obs))
	var fail bool
	d.Register(NewChecker("t", func(*Context) error {
		if fail {
			return errors.New("injected")
		}
		return nil
	}))
	d.Factory().Context("t").MarkReady()

	mustCheck := func() {
		t.Helper()
		if _, err := d.CheckNow("t"); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck()
	fail = true
	mustCheck()
	fail = false
	mustCheck()

	if len(obs.reports) != 3 {
		t.Fatalf("observer saw %d reports, want 3", len(obs.reports))
	}
	want := []struct {
		status Status
		prev   Status
		first  bool
	}{
		{StatusHealthy, StatusHealthy, true},
		{StatusError, StatusHealthy, false},
		{StatusHealthy, StatusError, false},
	}
	for i, w := range want {
		got := obs.reports[i]
		if got.rep.Status != w.status || got.prev != w.prev || got.first != w.first {
			t.Errorf("report %d = (%v, prev %v, first %v), want (%v, %v, %v)",
				i, got.rep.Status, got.prev, got.first, w.status, w.prev, w.first)
		}
	}
	if len(obs.alarms) != 1 {
		t.Fatalf("observer saw %d alarms, want 1", len(obs.alarms))
	}
	if obs.alarms[0].Report.Status != StatusError {
		t.Errorf("alarm status = %v", obs.alarms[0].Report.Status)
	}
}

func TestSetObserverAfterStartPanics(t *testing.T) {
	d := New(WithInterval(time.Hour))
	d.Register(NewChecker("p", func(*Context) error { return nil }))
	d.Start()
	defer d.Stop()
	defer func() {
		if recover() == nil {
			t.Error("SetObserver after Start did not panic")
		}
	}()
	d.SetObserver(&recordingObserver{})
}

// TestDriverState covers the State snapshot: policy fields, counters, latest
// report, and context synchronization metadata.
func TestDriverState(t *testing.T) {
	d := New(WithInterval(2*time.Second), WithTimeout(9*time.Second))
	d.Register(NewChecker("a", func(*Context) error { return nil }), Threshold(4))
	d.Register(NewChecker("b", func(*Context) error { return errors.New("bad") }),
		Every(time.Second))

	before := time.Now()
	d.Factory().Context("a").Put("k", "v")
	d.Factory().Context("b").MarkReady()
	if _, err := d.CheckNow("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CheckNow("b"); err != nil {
		t.Fatal(err)
	}

	states := d.State()
	if len(states) != 2 || states[0].Name != "a" || states[1].Name != "b" {
		t.Fatalf("State() = %+v", states)
	}
	a, b := states[0], states[1]
	if a.Interval != 2*time.Second || a.Timeout != 9*time.Second || a.Threshold != 4 {
		t.Errorf("policy not captured: %+v", a)
	}
	if b.Interval != time.Second {
		t.Errorf("per-checker interval not captured: %+v", b)
	}
	if a.Runs != 1 || a.Abnormal != 0 || !a.HasLatest || a.Latest.Status != StatusHealthy {
		t.Errorf("a counters wrong: %+v", a)
	}
	if b.Runs != 1 || b.Abnormal != 1 || b.Consecutive != 1 || b.Latest.Status != StatusError {
		t.Errorf("b counters wrong: %+v", b)
	}
	if !a.ContextReady || a.ContextVersion != 1 {
		t.Errorf("a context meta wrong: %+v", a)
	}
	if a.ContextSync.Before(before) || time.Since(a.ContextSync) > time.Minute {
		t.Errorf("a sync timestamp implausible: %v", a.ContextSync)
	}
}

// TestContextLastSync pins the LastSync contract on a bare context.
func TestContextLastSync(t *testing.T) {
	c := NewContext()
	if _, ok := c.LastSync(); ok {
		t.Error("fresh context reports a sync time")
	}
	c.Put("k", 1)
	at, ok := c.LastSync()
	if !ok || at.IsZero() {
		t.Errorf("LastSync after Put = %v, %v", at, ok)
	}
	c.Invalidate()
	if _, ok := c.LastSync(); !ok {
		t.Error("Invalidate erased the sync timestamp")
	}
}
