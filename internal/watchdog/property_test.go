package watchdog

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// TestAlarmLatchModelProperty verifies the driver's alarm policy against a
// reference model over arbitrary outcome sequences: an alarm fires exactly
// when the consecutive-abnormal streak reaches the threshold, stays latched
// through further abnormal reports, and re-arms after a healthy report.
func TestAlarmLatchModelProperty(t *testing.T) {
	f := func(outcomes []bool, thresholdRaw uint8) bool {
		threshold := int(thresholdRaw%4) + 1
		if len(outcomes) > 64 {
			outcomes = outcomes[:64]
		}

		d := New()
		idx := 0
		d.Register(NewChecker("model", func(*Context) error {
			fail := outcomes[idx]
			idx++
			if fail {
				return errors.New("scripted failure")
			}
			return nil
		}), Threshold(threshold))
		d.Factory().Context("model").MarkReady()

		var mu sync.Mutex
		gotAlarms := 0
		d.OnAlarm(func(Alarm) { mu.Lock(); gotAlarms++; mu.Unlock() })

		// Reference model.
		wantAlarms := 0
		streak := 0
		latched := false
		for _, fail := range outcomes {
			if fail {
				streak++
				if streak >= threshold && !latched {
					latched = true
					wantAlarms++
				}
			} else {
				streak = 0
				latched = false
			}
		}

		for range outcomes {
			if _, err := d.CheckNow("model"); err != nil {
				return false
			}
		}
		mu.Lock()
		defer mu.Unlock()
		return gotAlarms == wantAlarms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsConsistencyProperty: runs+abnormal counters always agree with
// the scripted outcome sequence, and Healthy() mirrors the latest report.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		if len(outcomes) == 0 {
			return true
		}
		if len(outcomes) > 64 {
			outcomes = outcomes[:64]
		}
		d := New()
		idx := 0
		d.Register(NewChecker("stats", func(*Context) error {
			fail := outcomes[idx]
			idx++
			if fail {
				return errors.New("x")
			}
			return nil
		}))
		d.Factory().Context("stats").MarkReady()
		wantAbnormal := 0
		for _, fail := range outcomes {
			if fail {
				wantAbnormal++
			}
			d.CheckNow("stats")
		}
		st, ok := d.CheckerStats("stats")
		if !ok || st.Runs != int64(len(outcomes)) || st.Abnormal != int64(wantAbnormal) {
			return false
		}
		lastFailed := outcomes[len(outcomes)-1]
		return d.Healthy() == !lastFailed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryOrderingProperty: the report history preserves execution order
// and never exceeds its cap.
func TestHistoryOrderingProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		historyCap := int(capRaw%32) + 1
		runs := int(n % 64)
		d := New(WithHistory(historyCap))
		d.Register(healthyChecker("h"))
		d.Factory().Context("h").MarkReady()
		for i := 0; i < runs; i++ {
			d.CheckNow("h")
		}
		hist := d.History()
		if runs <= historyCap {
			return len(hist) == runs
		}
		if len(hist) != historyCap {
			return false
		}
		for i := 1; i < len(hist); i++ {
			if hist[i].Time.Before(hist[i-1].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
