package watchdog

import (
	"fmt"
	"time"
)

// Checker is one checking procedure tailored to inspect a certain part of
// the main program (§3.1). A checker returning nil reports health; returning
// an error reports a safety violation. Liveness violations are not reported
// by return value — a checker that hangs *is* the liveness signal, caught by
// the driver's timeout ("share fate", §3.3).
type Checker interface {
	// Name identifies the checker in reports and for hook/context wiring.
	Name() string
	// Check runs one inspection against the given context. The driver
	// guarantees ctx.Ready() is true when Check is invoked.
	Check(ctx *Context) error
}

// CheckFunc adapts a function to the Checker interface.
type CheckFunc struct {
	// CheckerName is returned by Name.
	CheckerName string
	// Fn is invoked by Check.
	Fn func(ctx *Context) error
}

// Name implements Checker.
func (c CheckFunc) Name() string { return c.CheckerName }

// Check implements Checker.
func (c CheckFunc) Check(ctx *Context) error { return c.Fn(ctx) }

// NewChecker returns a Checker from a name and a function.
func NewChecker(name string, fn func(ctx *Context) error) Checker {
	return CheckFunc{CheckerName: name, Fn: fn}
}

// Op executes one vulnerable operation inside a checker, providing the three
// guarantees mimic checkers need (§3.3, Figure 3):
//
//   - pinpointing: the site is registered on the context before the body
//     runs, so a hang detected by the driver is attributed to this exact
//     operation;
//   - error localization: a non-nil error is wrapped into an OpError that
//     carries the site;
//   - crash confinement: a panic in the body is converted into an OpError
//     rather than unwinding into the driver.
func Op(ctx *Context, site Site, body func() error) (err error) {
	ctx.EnterOp(site)
	defer func() {
		ctx.ExitOp()
		if r := recover(); r != nil {
			err = &OpError{Site: site, Err: &PanicError{Value: r}}
		}
	}()
	if e := body(); e != nil {
		return &OpError{Site: site, Err: e}
	}
	return nil
}

// OpTimed is Op plus a latency observation: if the operation completes but
// takes longer than slowAfter, it returns a SlowError so the driver can
// report fail-slow behaviour distinctly from a full hang. The elapsed
// duration is measured with the supplied now function so virtual-clock tests
// stay deterministic; pass nil to use wall time.
func OpTimed(ctx *Context, site Site, slowAfter time.Duration, now func() time.Time, body func() error) error {
	if now == nil {
		now = time.Now
	}
	start := now()
	err := Op(ctx, site, body)
	if err != nil {
		return err
	}
	if elapsed := now().Sub(start); slowAfter > 0 && elapsed > slowAfter {
		return &SlowError{Site: site, Elapsed: elapsed, Budget: slowAfter}
	}
	return nil
}

// SlowError reports a vulnerable operation that completed but exceeded its
// latency budget — the fail-slow manifestation (§1).
type SlowError struct {
	Site    Site
	Elapsed time.Duration
	Budget  time.Duration
}

// Error implements the error interface.
func (e *SlowError) Error() string {
	return fmt.Sprintf("%s: completed in %v, budget %v", e.Site, e.Elapsed, e.Budget)
}
