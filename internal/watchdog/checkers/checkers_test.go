package checkers

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"gowatchdog/internal/gauge"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

func runOnce(t *testing.T, c watchdog.Checker) watchdog.Report {
	t.Helper()
	d := watchdog.New()
	d.Register(c, watchdog.WithContext(ProbeContext()))
	rep, err := d.CheckNow(c.Name())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestProbeHealthyAndFailing(t *testing.T) {
	ok := Probe("probe-ok", func() error { return nil })
	if rep := runOnce(t, ok); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("status = %v", rep.Status)
	}
	bad := Probe("probe-bad", func() error { return errors.New("SET failed") })
	rep := runOnce(t, bad)
	if rep.Status != watchdog.StatusError {
		t.Fatalf("status = %v", rep.Status)
	}
	// Probe checkers cannot pinpoint: no site.
	if !rep.Site.IsZero() {
		t.Fatalf("probe checker reported a site: %v", rep.Site)
	}
}

func TestHeapLimit(t *testing.T) {
	// An absurdly high limit never fires; a zero limit always fires.
	if rep := runOnce(t, HeapLimit("heap-hi", 1<<62)); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("high limit fired: %v", rep)
	}
	rep := runOnce(t, HeapLimit("heap-lo", 0))
	if rep.Status != watchdog.StatusError {
		t.Fatalf("zero limit did not fire: %v", rep)
	}
	var se *SignalError
	if !errors.As(rep.Err, &se) || se.Indicator != "heap-bytes" {
		t.Fatalf("err = %v", rep.Err)
	}
}

func TestGoroutineLimit(t *testing.T) {
	if rep := runOnce(t, GoroutineLimit("g-hi", 1<<30)); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("high limit fired: %v", rep)
	}
	if rep := runOnce(t, GoroutineLimit("g-lo", 0)); rep.Status != watchdog.StatusError {
		t.Fatalf("zero limit did not fire: %v", rep)
	}
}

func TestSchedulerDelayDetectsPause(t *testing.T) {
	// Simulated clocks: the sleeper "sleeps" 10ms but 500ms elapse — a long
	// GC pause. now() advances by 500ms per call pair.
	fake := time.Unix(0, 0)
	now := func() time.Time { return fake }
	sleeper := func(time.Duration) { fake = fake.Add(500 * time.Millisecond) }
	c := SchedulerDelay("sched", 10*time.Millisecond, 100*time.Millisecond, sleeper, now)
	rep := runOnce(t, c)
	if rep.Status != watchdog.StatusError {
		t.Fatalf("status = %v", rep.Status)
	}
	var se *SignalError
	if !errors.As(rep.Err, &se) || se.Indicator != "sched-delay" {
		t.Fatalf("err = %v", rep.Err)
	}
}

func TestSchedulerDelayHealthyUnderNormalScheduling(t *testing.T) {
	fake := time.Unix(0, 0)
	now := func() time.Time { return fake }
	sleeper := func(d time.Duration) { fake = fake.Add(d) } // exact sleep
	c := SchedulerDelay("sched-ok", 10*time.Millisecond, 50*time.Millisecond, sleeper, now)
	if rep := runOnce(t, c); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("status = %v", rep.Status)
	}
}

func TestSchedulerDelayRealClockDefaultsHealthy(t *testing.T) {
	c := SchedulerDelay("sched-real", time.Millisecond, 5*time.Second, nil, nil)
	if rep := runOnce(t, c); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("real scheduler reported %v", rep)
	}
}

func TestGaugeAboveBelow(t *testing.T) {
	r := gauge.NewRegistry()
	g := r.Gauge("queue.len")
	g.Set(5)
	above := GaugeAbove("q-above", "queue-len", g, 10)
	if rep := runOnce(t, above); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("above fired at 5/10: %v", rep)
	}
	g.Set(11)
	if rep := runOnce(t, above); rep.Status != watchdog.StatusError {
		t.Fatalf("above did not fire at 11/10: %v", rep)
	}

	free := r.Gauge("disk.free")
	free.Set(100)
	below := GaugeBelow("d-below", "disk-free", free, 50)
	if rep := runOnce(t, below); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("below fired at 100/50: %v", rep)
	}
	free.Set(10)
	if rep := runOnce(t, below); rep.Status != watchdog.StatusError {
		t.Fatalf("below did not fire at 10/50: %v", rep)
	}
}

func TestCounterStalled(t *testing.T) {
	r := gauge.NewRegistry()
	c := r.Counter("flushes")
	chk := CounterStalled("progress", "flush-progress", c)
	d := watchdog.New()
	d.Register(chk, watchdog.WithContext(ProbeContext()))
	// First run seeds; never abnormal.
	if rep, _ := d.CheckNow("progress"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("seed run = %v", rep.Status)
	}
	// No progress since seed -> stalled.
	if rep, _ := d.CheckNow("progress"); rep.Status != watchdog.StatusError {
		t.Fatalf("stalled run = %v", rep.Status)
	}
	// Progress resumes -> healthy.
	c.Inc()
	if rep, _ := d.CheckNow("progress"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("progressing run = %v", rep.Status)
	}
}

func TestCounterRising(t *testing.T) {
	r := gauge.NewRegistry()
	c := r.Counter("errors")
	chk := CounterRising("errs", "error-rate", c)
	d := watchdog.New()
	d.Register(chk, watchdog.WithContext(ProbeContext()))
	// Seed run, flat counter: healthy.
	if rep, _ := d.CheckNow("errs"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("seed = %v", rep.Status)
	}
	if rep, _ := d.CheckNow("errs"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("flat = %v", rep.Status)
	}
	// Rising counter: error.
	c.Add(3)
	rep, _ := d.CheckNow("errs")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("rising = %v", rep.Status)
	}
	// Back to flat: healthy again.
	if rep, _ := d.CheckNow("errs"); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("flat again = %v", rep.Status)
	}
}

func TestWindowQuantileAbove(t *testing.T) {
	w := gauge.NewWindow(16)
	for i := 0; i < 10; i++ {
		w.Observe(1)
	}
	c := WindowQuantileAbove("lat", "latency-p99", w, 0.99, 5)
	if rep := runOnce(t, c); rep.Status != watchdog.StatusHealthy {
		t.Fatalf("fired on low latency: %v", rep)
	}
	for i := 0; i < 10; i++ {
		w.Observe(100)
	}
	if rep := runOnce(t, c); rep.Status != watchdog.StatusError {
		t.Fatalf("did not fire on high latency: %v", rep)
	}
}

func TestMimicPinpoints(t *testing.T) {
	site := watchdog.Site{Function: "kvs.(*Flusher).flushOnce", Op: "wal.Append", File: "flush.go", Line: 33}
	c := Mimic("mimic-flush", func(ctx *watchdog.Context) error {
		return watchdog.Op(ctx, site, func() error { return errors.New("EIO") })
	})
	d := watchdog.New()
	ctx := watchdog.NewContext()
	ctx.Put("last-batch", []byte("k=v"))
	d.Register(c, watchdog.WithContext(ctx))
	rep, _ := d.CheckNow("mimic-flush")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("status = %v", rep.Status)
	}
	if rep.Site != site {
		t.Fatalf("site = %v, want %v", rep.Site, site)
	}
	if string(rep.Payload["last-batch"].([]byte)) != "k=v" {
		t.Fatalf("payload missing failure-inducing context: %v", rep.Payload)
	}
}

func TestDiskRoundTripHealthy(t *testing.T) {
	fs, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	site := watchdog.Site{Function: "dfs.(*Volume).writeBlock", Op: "os.WriteFile"}
	c := DiskRoundTrip("disk", fs, site, "last-block")
	d := watchdog.New()
	ctx := watchdog.NewContext()
	ctx.Put("last-block", []byte("block payload"))
	d.Register(c, watchdog.WithContext(ctx))
	rep, _ := d.CheckNow("disk")
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("status = %v err = %v", rep.Status, rep.Err)
	}
}

func TestDiskRoundTripDefaultPayload(t *testing.T) {
	fs, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := DiskRoundTrip("disk2", fs, watchdog.Site{Op: "os.WriteFile"}, "missing-key")
	d := watchdog.New()
	d.Register(c, watchdog.WithContext(ProbeContext()))
	rep, _ := d.CheckNow("disk2")
	if rep.Status != watchdog.StatusHealthy {
		t.Fatalf("status = %v err = %v", rep.Status, rep.Err)
	}
}

func TestDiskRoundTripQuotaFaultDetected(t *testing.T) {
	fs, err := wdio.NewFS(filepath.Join(t.TempDir(), "shadow"), 4) // 4-byte quota
	if err != nil {
		t.Fatal(err)
	}
	site := watchdog.Site{Op: "os.WriteFile"}
	c := DiskRoundTrip("disk3", fs, site, "k")
	d := watchdog.New()
	ctx := watchdog.NewContext()
	ctx.Put("k", []byte("way more than four bytes"))
	d.Register(c, watchdog.WithContext(ctx))
	rep, _ := d.CheckNow("disk3")
	if rep.Status != watchdog.StatusError {
		t.Fatalf("status = %v", rep.Status)
	}
	if rep.Site != site {
		t.Fatalf("site = %v", rep.Site)
	}
}
