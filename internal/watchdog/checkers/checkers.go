// Package checkers provides the three watchdog checker styles from Table 2
// of the paper:
//
//   - Probe checkers act like a special client, invoking the software's
//     public APIs with pre-supplied input. Perfect accuracy (any error is a
//     true contract violation) but weak completeness and no pinpointing.
//   - Signal checkers monitor health indicators (memory, goroutines,
//     scheduling delay, queue gauges). Good at environment/resource faults,
//     weak accuracy, partial localization.
//   - Mimic checkers select important operations from the main program and
//     imitate them with state synchronized through contexts. Strong
//     completeness and accuracy; pinpoint the failing operation.
//
// Probe and signal checkers are constructed here in full; mimic checkers are
// built from reduced functions (hand-written or emitted by the autowatchdog
// generator) with the helpers in this package and the watchdog.Op primitive.
package checkers

import (
	"fmt"
	"runtime"
	"time"

	"gowatchdog/internal/gauge"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// Probe returns a probe-style checker. The function should exercise a public
// API end to end (e.g. SET then GET on kvs) and return an error only when
// the contract is violated. Probe checkers need no context; register them
// with ProbeContext or mark their context ready at startup.
func Probe(name string, fn func() error) watchdog.Checker {
	return watchdog.NewChecker(name, func(*watchdog.Context) error {
		if err := fn(); err != nil {
			return fmt.Errorf("probe %s: %w", name, err)
		}
		return nil
	})
}

// ProbeContext returns a pre-ready context for probe checkers, which have no
// state to synchronize.
func ProbeContext() *watchdog.Context {
	ctx := watchdog.NewContext()
	ctx.MarkReady()
	return ctx
}

// SignalError reports a health-indicator threshold violation. Signal
// checkers cannot pinpoint a faulty instruction, but the indicator name
// narrows the cause "to some extent" (Table 2).
type SignalError struct {
	// Indicator names the violated health signal, e.g. "heap-bytes".
	Indicator string
	// Value and Threshold record the observation.
	Value, Threshold float64
}

// Error implements the error interface.
func (e *SignalError) Error() string {
	return fmt.Sprintf("signal %s: value %.2f violates threshold %.2f",
		e.Indicator, e.Value, e.Threshold)
}

// signal builds a signal checker around a sampled indicator.
func signal(name, indicator string, sample func() float64, violated func(v float64) (bool, float64)) watchdog.Checker {
	return watchdog.NewChecker(name, func(ctx *watchdog.Context) error {
		v := sample()
		bad, threshold := violated(v)
		if !bad {
			return nil
		}
		return &watchdog.OpError{
			Site: watchdog.Site{Op: "signal:" + indicator},
			Err:  &SignalError{Indicator: indicator, Value: v, Threshold: threshold},
		}
	})
}

// HeapLimit returns a signal checker that reports when the Go heap exceeds
// maxBytes — the memory-pressure indicator.
func HeapLimit(name string, maxBytes uint64) watchdog.Checker {
	return signal(name, "heap-bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	}, func(v float64) (bool, float64) {
		return v > float64(maxBytes), float64(maxBytes)
	})
}

// GoroutineLimit returns a signal checker that reports when the process has
// more than max goroutines — a leak/deadlock-pileup indicator.
func GoroutineLimit(name string, max int) watchdog.Checker {
	return signal(name, "goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	}, func(v float64) (bool, float64) {
		return v > float64(max), float64(max)
	})
}

// SchedulerDelay returns the paper's GC-pause/overload detector (§3.3): a
// worker sleeps for a short interval; if the observed elapsed time exceeds
// sleep+tolerance, the runtime is stalling threads (long GC pause, CPU
// starvation, severe thrashing). sleeper and now default to the real clock
// when nil, and are injectable for deterministic tests.
func SchedulerDelay(name string, sleep, tolerance time.Duration,
	sleeper func(time.Duration), now func() time.Time) watchdog.Checker {
	if sleeper == nil {
		sleeper = time.Sleep
	}
	if now == nil {
		now = time.Now
	}
	return signal(name, "sched-delay", func() float64 {
		start := now()
		sleeper(sleep)
		return float64(now().Sub(start) - sleep)
	}, func(v float64) (bool, float64) {
		return v > float64(tolerance), float64(tolerance)
	})
}

// GaugeAbove returns a signal checker that reports when g exceeds threshold
// (e.g. request queue length at capacity).
func GaugeAbove(name, indicator string, g *gauge.Gauge, threshold float64) watchdog.Checker {
	return signal(name, indicator, g.Value, func(v float64) (bool, float64) {
		return v > threshold, threshold
	})
}

// GaugeBelow returns a signal checker that reports when g drops below
// threshold (e.g. free disk space).
func GaugeBelow(name, indicator string, g *gauge.Gauge, threshold float64) watchdog.Checker {
	return signal(name, indicator, g.Value, func(v float64) (bool, float64) {
		return v < threshold, threshold
	})
}

// CounterStalled returns a signal checker that reports when c has not
// advanced since the previous check — a progress indicator for a component
// that should be continuously doing work (but see Table 2: if the workload
// legitimately idles, this fires spuriously; that inaccuracy is inherent to
// the signal style and measured in experiment E2).
func CounterStalled(name, indicator string, c *gauge.Counter) watchdog.Checker {
	var last int64
	var seeded bool
	return watchdog.NewChecker(name, func(*watchdog.Context) error {
		cur := c.Value()
		if !seeded {
			seeded = true
			last = cur
			return nil
		}
		if cur == last {
			return &watchdog.OpError{
				Site: watchdog.Site{Op: "signal:" + indicator},
				Err:  &SignalError{Indicator: indicator, Value: float64(cur), Threshold: float64(last)},
			}
		}
		last = cur
		return nil
	})
}

// CounterRising returns a signal checker that reports when c advanced since
// the previous check — error-rate style alerting on a counter that should
// stay flat (e.g. an error counter).
func CounterRising(name, indicator string, c *gauge.Counter) watchdog.Checker {
	var last int64
	var seeded bool
	return watchdog.NewChecker(name, func(*watchdog.Context) error {
		cur := c.Value()
		if !seeded {
			seeded = true
			last = cur
			return nil
		}
		if cur > last {
			delta := cur - last
			last = cur
			return &watchdog.OpError{
				Site: watchdog.Site{Op: "signal:" + indicator},
				Err:  &SignalError{Indicator: indicator, Value: float64(delta), Threshold: 0},
			}
		}
		last = cur
		return nil
	})
}

// WindowQuantileAbove returns a signal checker on a latency window's
// q-quantile.
func WindowQuantileAbove(name, indicator string, w *gauge.Window, q, threshold float64) watchdog.Checker {
	return signal(name, indicator, func() float64 { return w.Quantile(q) },
		func(v float64) (bool, float64) { return v > threshold, threshold })
}

// Mimic returns a mimic-style checker from a reduced function. The reduced
// function should execute each retained vulnerable operation through
// watchdog.Op (or OpTimed) so failures are pinpointed; the driver supplies a
// context kept in sync by hooks in the main program.
func Mimic(name string, reduced func(ctx *watchdog.Context) error) watchdog.Checker {
	return watchdog.NewChecker(name, reduced)
}

// DiskRoundTrip returns a mimic checker that performs a real
// write-read-verify-remove cycle on the shadow filesystem, with the payload
// taken from the checker context when available (the failure-inducing data
// the main program last flushed). This is the HDFS disk-checker pattern the
// paper cites: create files and do real I/O the way the DataNode does.
func DiskRoundTrip(name string, fs *wdio.FS, site watchdog.Site, payloadKey string) watchdog.Checker {
	return watchdog.NewChecker(name, func(ctx *watchdog.Context) error {
		payload := ctx.GetBytes(payloadKey)
		if len(payload) == 0 {
			payload = []byte("watchdog disk probe payload 0123456789abcdef")
		}
		return watchdog.Op(ctx, site, func() error {
			return fs.RoundTrip(name+".probe", payload)
		})
	})
}
