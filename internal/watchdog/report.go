// Package watchdog implements the intrinsic software watchdog abstraction
// from "Comprehensive and Efficient Runtime Checking in System Software
// through Watchdogs" (HotOS '19).
//
// A watchdog is an extension embedded in the main program (it lives in the
// same address space) that encapsulates checking procedures — checkers — and
// a driver that schedules and executes them concurrently with the normal
// execution. When a checker gets stuck, crashes, or triggers an error, the
// driver catches the failure signature, pinpoints the vulnerable operation
// that was executing, and raises an alarm carrying the failure-inducing
// context (§3.1).
//
// State flows one way: hooks placed in the main program update per-checker
// contexts; checkers only run once their context is ready, which prevents
// spurious reports about code paths the main program never exercised (§3.1,
// ablated in experiment E7).
package watchdog

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Status classifies the outcome of one checker execution.
type Status int

const (
	// StatusHealthy means the checker completed without detecting a fault.
	StatusHealthy Status = iota
	// StatusContextPending means the checker was skipped because its context
	// has not been populated by the main program yet. Not a fault.
	StatusContextPending
	// StatusError means the checker detected a safety violation: an
	// operation returned an error or produced wrong data.
	StatusError
	// StatusStuck means the checker exceeded its liveness timeout, implying
	// the mimicked operation blocks in the main program too (shared fate).
	StatusStuck
	// StatusCrashed means the checker panicked, exposing a crashing defect.
	StatusCrashed
	// StatusSlow means the checker completed but took anomalously long,
	// implying fail-slow behaviour rather than a full hang.
	StatusSlow
	// StatusSkipped means the driver declined to execute the checker to
	// protect itself: its circuit breaker is open, or the hung-goroutine
	// budget is exhausted (§3.2 isolation — a misbehaving checker must not
	// take the watchdog down with it). Not a fault of the main program; Err
	// explains which guard fired.
	StatusSkipped
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusHealthy:
		return "healthy"
	case StatusContextPending:
		return "context-pending"
	case StatusError:
		return "error"
	case StatusStuck:
		return "stuck"
	case StatusCrashed:
		return "crashed"
	case StatusSlow:
		return "slow"
	case StatusSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ParseStatus converts a status name produced by String back to a Status.
func ParseStatus(name string) (Status, error) {
	for s := StatusHealthy; s <= StatusSkipped; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("watchdog: unknown status %q", name)
}

// MarshalText renders the status as its name, making every JSON carrier of a
// Status (reports, journal events, the /watchdog endpoint) share one stable
// wire representation.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a status name.
func (s *Status) UnmarshalText(text []byte) error {
	v, err := ParseStatus(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Abnormal reports whether the status indicates a detected fault.
func (s Status) Abnormal() bool {
	switch s {
	case StatusError, StatusStuck, StatusCrashed, StatusSlow:
		return true
	default:
		return false
	}
}

// Site identifies a vulnerable operation inside the main program — the
// pinpoint a mimic checker reports (Table 2: mimic checkers can localize the
// failing instruction; probe checkers cannot).
type Site struct {
	// Function is the fully qualified main-program function being mimicked,
	// e.g. "kvs.(*Flusher).flushOnce".
	Function string `json:"function,omitempty"`
	// Op names the vulnerable operation, e.g. "wal.Append" or "net.Write".
	Op string `json:"op,omitempty"`
	// File and Line locate the operation in the main program's source.
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// IsZero reports whether the site carries no location information.
func (s Site) IsZero() bool { return s == Site{} }

// String renders the site as function/op@file:line, omitting empty parts.
func (s Site) String() string {
	if s.IsZero() {
		return "<unknown>"
	}
	out := s.Function
	if s.Op != "" {
		if out != "" {
			out += "/"
		}
		out += s.Op
	}
	if s.File != "" {
		out += fmt.Sprintf("@%s:%d", s.File, s.Line)
	}
	return out
}

// Report is the outcome of one checker execution, delivered to listeners and
// kept in the driver's ledger.
type Report struct {
	// Checker is the name of the checker that produced this report.
	Checker string
	// Status classifies the outcome.
	Status Status
	// Err is the detected error for StatusError/StatusCrashed reports.
	Err error
	// Site pinpoints the vulnerable operation implicated in the fault; zero
	// for checkers that cannot localize (probe, most signal checkers).
	Site Site
	// Payload carries the failure-inducing context captured at hook time —
	// the arguments the mimicked operation ran with — for diagnosis and
	// reproduction (§5.2).
	Payload map[string]any
	// Latency is how long the checker ran (or the timeout, when stuck).
	Latency time.Duration
	// Time is when the checker execution finished (or timed out).
	Time time.Time
}

// reportWire is the stable JSON schema for reports, shared by the wdobs
// detection journal, the /watchdog endpoint, and wdreplay. Err is flattened
// to its message and Latency is pinned to nanoseconds so the format does not
// depend on Go error types or Duration encoding details.
type reportWire struct {
	Checker   string         `json:"checker"`
	Status    Status         `json:"status"`
	Error     string         `json:"error,omitempty"`
	Site      *Site          `json:"site,omitempty"`
	Payload   map[string]any `json:"payload,omitempty"`
	LatencyNS int64          `json:"latency_ns,omitempty"`
	Time      time.Time      `json:"time"`
}

// MarshalJSON implements json.Marshaler using the stable wire schema.
func (r Report) MarshalJSON() ([]byte, error) {
	w := reportWire{
		Checker:   r.Checker,
		Status:    r.Status,
		Payload:   r.Payload,
		LatencyNS: int64(r.Latency),
		Time:      r.Time,
	}
	if r.Err != nil {
		w.Error = r.Err.Error()
	}
	if !r.Site.IsZero() {
		site := r.Site
		w.Site = &site
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler. A round-tripped Err carries the
// original message but not the original type; payload values decode as
// generic JSON kinds.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w reportWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Report{
		Checker: w.Checker,
		Status:  w.Status,
		Payload: w.Payload,
		Latency: time.Duration(w.LatencyNS),
		Time:    w.Time,
	}
	if w.Error != "" {
		r.Err = errors.New(w.Error)
	}
	if w.Site != nil {
		r.Site = *w.Site
	}
	return nil
}

// String renders a compact one-line summary.
func (r Report) String() string {
	out := fmt.Sprintf("[%s] %s", r.Checker, r.Status)
	if r.Err != nil {
		out += ": " + r.Err.Error()
	}
	if !r.Site.IsZero() {
		out += " at " + r.Site.String()
	}
	return out
}

// Alarm is raised by the driver once a checker's abnormal reports cross its
// threshold, optionally validated by a secondary checker (§5.1: invoking
// probe checkers when mimic checkers detect faults reduces false alarms).
type Alarm struct {
	// Report is the abnormal report that crossed the threshold.
	Report Report `json:"report"`
	// Consecutive is the number of consecutive abnormal reports.
	Consecutive int `json:"consecutive"`
	// Validated is nil when no validator is configured; otherwise it points
	// to the validator's verdict (true = fault confirmed impactful).
	Validated *bool `json:"validated,omitempty"`
	// Flaps counts identical alarms an AlarmGate suppressed since the last
	// alarm it let through for this (checker, site, status); zero when no
	// damping is configured or nothing flapped.
	Flaps int `json:"flaps,omitempty"`
}

// OpError wraps an error with the vulnerable-operation site that produced it.
// Mimic checkers return OpErrors so the driver can pinpoint failures.
type OpError struct {
	Site Site
	Err  error
}

// Error implements the error interface.
func (e *OpError) Error() string {
	return fmt.Sprintf("%s: %v", e.Site, e.Err)
}

// Unwrap returns the underlying error.
func (e *OpError) Unwrap() error { return e.Err }
