package watchdog

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestStatusTextRoundTrip proves every status survives MarshalText →
// UnmarshalText, the contract that keeps the journal, the /watchdog
// endpoint, and wdreplay on one wire format.
func TestStatusTextRoundTrip(t *testing.T) {
	for s := StatusHealthy; s <= StatusSkipped; s++ {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", s, err)
		}
		var back Status
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %q -> %v", s, text, back)
		}
	}
	var bad Status
	if err := bad.UnmarshalText([]byte("melted")); err == nil {
		t.Error("UnmarshalText(melted) succeeded")
	}
	if _, err := ParseStatus("Status(42)"); err == nil {
		t.Error("ParseStatus of an out-of-range rendering succeeded")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{
		Checker: "kvs.flusher",
		Status:  StatusStuck,
		Err:     errors.New("checker exceeded 6s timeout"),
		Site: Site{
			Function: "kvs.(*Flusher).flushOnce",
			Op:       "wal.Append",
			File:     "flush.go",
			Line:     42,
		},
		Payload: map[string]any{"partition": 3.0, "path": "/data/p003.sst", "dirty": true},
		Latency: 6 * time.Second,
		Time:    time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"status":"stuck"`, `"latency_ns":6000000000`, `"op":"wal.Append"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded report missing %s: %s", want, data)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Checker != rep.Checker || back.Status != rep.Status ||
		back.Site != rep.Site || back.Latency != rep.Latency || !back.Time.Equal(rep.Time) {
		t.Errorf("round trip changed fields:\n got %+v\nwant %+v", back, rep)
	}
	if back.Err == nil || back.Err.Error() != rep.Err.Error() {
		t.Errorf("error round trip: got %v, want %v", back.Err, rep.Err)
	}
	if !reflect.DeepEqual(back.Payload, rep.Payload) {
		t.Errorf("payload round trip: got %v, want %v", back.Payload, rep.Payload)
	}

	// Stability: re-encoding the decoded report must reproduce the bytes.
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Errorf("second encode differs:\n first %s\nsecond %s", data, again)
	}
}

// TestReportJSONOmitsEmpty keeps healthy reports compact: no error, site, or
// payload keys for the overwhelmingly common case.
func TestReportJSONOmitsEmpty(t *testing.T) {
	data, err := json.Marshal(Report{Checker: "c", Status: StatusHealthy})
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{`"error"`, `"site"`, `"payload"`, `"latency_ns"`} {
		if strings.Contains(string(data), forbidden) {
			t.Errorf("healthy report carries %s: %s", forbidden, data)
		}
	}
}

func TestAlarmJSONRoundTrip(t *testing.T) {
	v := true
	a := Alarm{
		Report:      Report{Checker: "c", Status: StatusError, Err: errors.New("boom"), Time: time.Unix(100, 0).UTC()},
		Consecutive: 3,
		Validated:   &v,
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Alarm
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Consecutive != 3 || back.Validated == nil || !*back.Validated {
		t.Errorf("alarm fields lost: %+v", back)
	}
	if back.Report.Status != StatusError || back.Report.Err.Error() != "boom" {
		t.Errorf("alarm report lost: %+v", back.Report)
	}
}
