package watchdog

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/clock"
)

// noJitter disables backoff jitter so transitions land on exact virtual
// timestamps.
func noJitter(threshold int, base time.Duration) BreakerConfig {
	return BreakerConfig{Threshold: threshold, BackoffBase: base, JitterFrac: -1}
}

// TestBreakerTripOpenProbeClose walks the full state machine: K consecutive
// errors trip the breaker, executions are skipped while open, the first tick
// past the backoff runs a single probe, and a successful probe closes the
// breaker again.
func TestBreakerTripOpenProbeClose(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithBreaker(noJitter(3, 10*time.Second)))
	fail := true
	d.Register(NewChecker("flaky", func(*Context) error {
		if fail {
			return errors.New("boom")
		}
		return nil
	}))
	d.Factory().Context("flaky").MarkReady()

	for i := 0; i < 3; i++ {
		rep, _ := d.CheckNow("flaky")
		if rep.Status != StatusError {
			t.Fatalf("run %d status = %v, want error", i, rep.Status)
		}
	}
	st := d.State()[0]
	if !st.BreakerEnabled || st.Breaker != BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("after threshold: breaker = %+v", st)
	}
	want := v.Now().Add(10 * time.Second)
	if !st.BreakerNext.Equal(want) {
		t.Fatalf("next eligible = %v, want %v", st.BreakerNext, want)
	}

	// While open, executions are skipped without running the checker.
	rep, _ := d.CheckNow("flaky")
	if rep.Status != StatusSkipped {
		t.Fatalf("open status = %v, want skipped", rep.Status)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "breaker open") {
		t.Fatalf("skip err = %v", rep.Err)
	}
	if got := d.BreakerSkips(); got != 1 {
		t.Fatalf("BreakerSkips = %d, want 1", got)
	}
	if st, _ := d.CheckerStats("flaky"); st.Abnormal != 3 {
		t.Fatalf("skips counted as abnormal: %+v", st)
	}

	// A failed probe reopens with a doubled backoff.
	v.Advance(10 * time.Second)
	rep, _ = d.CheckNow("flaky")
	if rep.Status != StatusError {
		t.Fatalf("probe status = %v, want error (probe executed)", rep.Status)
	}
	st = d.State()[0]
	if st.Breaker != BreakerOpen || st.BreakerTrips != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	if want := v.Now().Add(20 * time.Second); !st.BreakerNext.Equal(want) {
		t.Fatalf("backoff did not double: next = %v, want %v", st.BreakerNext, want)
	}

	// A successful probe closes the breaker and normal cadence resumes.
	fail = false
	v.Advance(20 * time.Second)
	rep, _ = d.CheckNow("flaky")
	if rep.Status != StatusHealthy {
		t.Fatalf("recovered probe status = %v", rep.Status)
	}
	st = d.State()[0]
	if st.Breaker != BreakerClosed {
		t.Fatalf("after successful probe: %+v", st)
	}
	if rep, _ := d.CheckNow("flaky"); rep.Status != StatusHealthy {
		t.Fatalf("post-close status = %v", rep.Status)
	}

	// A fresh failure streak must again take Threshold runs to trip.
	fail = true
	for i := 0; i < 2; i++ {
		d.CheckNow("flaky")
	}
	if st := d.State()[0]; st.Breaker != BreakerClosed {
		t.Fatalf("tripped before threshold after close: %+v", st)
	}
	d.CheckNow("flaky")
	if st := d.State()[0]; st.Breaker != BreakerOpen || st.BreakerTrips != 3 {
		t.Fatalf("did not re-trip at threshold: %+v", st)
	}
	// The close reset the trip streak, so the backoff is back to base.
	if want := v.Now().Add(10 * time.Second); !d.State()[0].BreakerNext.Equal(want) {
		t.Fatalf("backoff after close = %v, want %v", d.State()[0].BreakerNext, want)
	}
}

// TestBreakerBackoffCapAndJitter checks the exponential cap and that jitter
// stays inside [backoff, backoff*(1+frac)).
func TestBreakerBackoffCapAndJitter(t *testing.T) {
	cfg := BreakerConfig{Threshold: 1, BackoffBase: time.Second, BackoffMax: 8 * time.Second}.withDefaults(time.Second)
	wants := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second, 8 * time.Second}
	for i, want := range wants {
		if got := cfg.backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	// Defaults: base = 2×interval, max = 64×base, jitter 0.2.
	def := BreakerConfig{Threshold: 1}.withDefaults(time.Second)
	if def.BackoffBase != 2*time.Second || def.BackoffMax != 128*time.Second || def.JitterFrac != 0.2 {
		t.Fatalf("defaults = %+v", def)
	}

	v := clock.NewVirtual()
	d := New(WithClock(v), WithJitterSeed(42),
		WithBreaker(BreakerConfig{Threshold: 1, BackoffBase: 10 * time.Second, JitterFrac: 0.5}))
	d.Register(NewChecker("j", func(*Context) error { return errors.New("x") }))
	d.Factory().Context("j").MarkReady()
	d.CheckNow("j")
	st := d.State()[0]
	delay := st.BreakerNext.Sub(v.Now())
	if delay < 10*time.Second || delay >= 15*time.Second {
		t.Fatalf("jittered backoff %v outside [10s,15s)", delay)
	}
}

// TestBreakerPerCheckerOverride: the Breaker checker option overrides the
// driver-wide config, including disabling it with a zero config.
func TestBreakerPerCheckerOverride(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithBreaker(noJitter(1, time.Second)))
	boom := func(*Context) error { return errors.New("boom") }
	d.Register(NewChecker("guarded", boom))
	d.Register(NewChecker("raw", boom), Breaker(BreakerConfig{}))
	d.Factory().Context("guarded").MarkReady()
	d.Factory().Context("raw").MarkReady()

	for i := 0; i < 3; i++ {
		d.CheckNow("guarded")
		d.CheckNow("raw")
	}
	states := d.State()
	if states[0].Breaker != BreakerOpen {
		t.Fatalf("guarded breaker = %v, want open", states[0].Breaker)
	}
	if states[1].BreakerEnabled {
		t.Fatalf("raw checker has breaker enabled")
	}
	if st, _ := d.CheckerStats("raw"); st.Abnormal != 3 {
		t.Fatalf("raw abnormal = %d, want 3 (never skipped)", st.Abnormal)
	}
}

// TestBreakerCountsHangs: stuck outcomes count toward the trip threshold, and
// an open breaker suppresses the per-tick stuck re-reports too.
func TestBreakerCountsHangs(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithTimeout(5*time.Second), WithBreaker(noJitter(1, time.Minute)))
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	d.Register(NewChecker("hang", func(*Context) error {
		entered <- struct{}{}
		<-release
		return nil
	}))
	d.Factory().Context("hang").MarkReady()

	done := make(chan Report, 1)
	go func() {
		rep, _ := d.CheckNow("hang")
		done <- rep
	}()
	<-entered
	v.BlockUntil(1)
	v.Advance(5 * time.Second)
	if rep := <-done; rep.Status != StatusStuck {
		t.Fatalf("status = %v, want stuck", rep.Status)
	}
	if st := d.State()[0]; st.Breaker != BreakerOpen {
		t.Fatalf("breaker = %v, want open after hang", st.Breaker)
	}
	// The still-blocked execution would re-report stuck every tick; the open
	// breaker turns that into skips.
	if rep, _ := d.CheckNow("hang"); rep.Status != StatusSkipped {
		t.Fatalf("open status = %v, want skipped", rep.Status)
	}
	close(release)
}

// TestHangBudgetDegradesGracefully: with a budget of 1 leaked goroutine, a
// second hang-prone checker is skipped with a budget-exhausted report instead
// of leaking a second goroutine, and reaping restores execution.
func TestHangBudgetDegradesGracefully(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithTimeout(5*time.Second), WithHangBudget(1))
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	d.Register(NewChecker("hog", func(*Context) error {
		entered <- struct{}{}
		<-release
		return nil
	}))
	d.Register(NewChecker("bystander", func(*Context) error { return nil }))
	d.Factory().Context("hog").MarkReady()
	d.Factory().Context("bystander").MarkReady()

	done := make(chan Report, 1)
	go func() {
		rep, _ := d.CheckNow("hog")
		done <- rep
	}()
	<-entered
	v.BlockUntil(1)
	v.Advance(5 * time.Second)
	if rep := <-done; rep.Status != StatusStuck {
		t.Fatalf("status = %v, want stuck", rep.Status)
	}
	if got := d.LeakedHung(); got != 1 {
		t.Fatalf("LeakedHung = %d, want 1", got)
	}

	// Budget exhausted: even a healthy checker is not started.
	rep, _ := d.CheckNow("bystander")
	if rep.Status != StatusSkipped {
		t.Fatalf("bystander status = %v, want skipped", rep.Status)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "hang budget exhausted") {
		t.Fatalf("skip err = %v", rep.Err)
	}
	if got := d.BudgetSkips(); got != 1 {
		t.Fatalf("BudgetSkips = %d, want 1", got)
	}

	// Releasing the hung execution reaps the goroutine and restores service.
	close(release)
	waitFor(t, func() bool { return d.LeakedHung() == 0 })
	if rep, _ := d.CheckNow("bystander"); rep.Status != StatusHealthy {
		t.Fatalf("post-reap status = %v", rep.Status)
	}
}

// waitFor polls cond with a real-time bound; used only to wait for reaper
// goroutines, which are not clock-driven.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAlarmDampingCollapsesStorm: with damping configured, the repeated
// alarms of a flapping checker collapse into the first one per window, and
// the next escaped alarm carries the suppressed count.
func TestAlarmDampingCollapsesStorm(t *testing.T) {
	v := clock.NewVirtual()
	d := New(WithClock(v), WithAlarmDamping(time.Minute))
	fail := true
	d.Register(NewChecker("flap", func(*Context) error {
		if fail {
			return errors.New("boom")
		}
		return nil
	}))
	d.Factory().Context("flap").MarkReady()
	var alarms []Alarm
	d.OnAlarm(func(a Alarm) { alarms = append(alarms, a) })

	// Flapping: error, healthy, error, ... Each error is a fresh streak
	// crossing threshold 1, so undamped this would be one alarm per error.
	for i := 0; i < 8; i++ {
		d.CheckNow("flap")
		fail = !fail
		v.Advance(time.Second)
	}
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (damped)", len(alarms))
	}
	if d.AlarmsSuppressed() != 3 {
		t.Fatalf("suppressed = %d, want 3", d.AlarmsSuppressed())
	}
	if st := d.State()[0]; st.Flaps != 3 {
		t.Fatalf("checker flaps = %d, want 3", st.Flaps)
	}

	// Past the window, the next alarm escapes and reports the flap count.
	v.Advance(time.Minute)
	fail = true
	d.CheckNow("flap")
	if len(alarms) != 2 {
		t.Fatalf("alarms after window = %d, want 2", len(alarms))
	}
	if alarms[1].Flaps != 3 {
		t.Fatalf("escaped alarm flaps = %d, want 3", alarms[1].Flaps)
	}
}

// TestAlarmGateStandalone exercises the gate API outside a driver.
func TestAlarmGateStandalone(t *testing.T) {
	v := clock.NewVirtual()
	g := NewAlarmGate(v, 10*time.Second)
	mk := func(checker string, s Status) Alarm {
		return Alarm{Report: Report{Checker: checker, Status: s, Time: v.Now()}}
	}

	if _, ok := g.Admit(mk("a", StatusError)); !ok {
		t.Fatal("first alarm suppressed")
	}
	for i := 0; i < 4; i++ {
		if _, ok := g.Admit(mk("a", StatusError)); ok {
			t.Fatalf("duplicate %d escaped inside window", i)
		}
	}
	// A different status is a different alarm family.
	if _, ok := g.Admit(mk("a", StatusStuck)); !ok {
		t.Fatal("distinct-status alarm suppressed")
	}
	// A different checker too.
	if _, ok := g.Admit(mk("b", StatusError)); !ok {
		t.Fatal("distinct-checker alarm suppressed")
	}
	if g.Suppressed() != 4 {
		t.Fatalf("Suppressed = %d, want 4", g.Suppressed())
	}
	v.Advance(10 * time.Second)
	out, ok := g.Admit(mk("a", StatusError))
	if !ok || out.Flaps != 4 {
		t.Fatalf("post-window alarm: ok=%v flaps=%d, want ok with 4", ok, out.Flaps)
	}

	var forwarded int
	fn := g.Wrap(func(Alarm) { forwarded++ })
	fn(mk("a", StatusError)) // inside fresh window: suppressed
	v.Advance(10 * time.Second)
	fn(mk("a", StatusError))
	if forwarded != 1 {
		t.Fatalf("Wrap forwarded %d, want 1", forwarded)
	}
}

// TestBreakerStateString pins the state names used by wdstat and /watchdog.
func TestBreakerStateString(t *testing.T) {
	wants := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(9): "BreakerState(9)",
	}
	for s, want := range wants {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// TestSkippedStatusSemantics pins the new status's classification: not
// abnormal, round-trips as "skipped", and leaves alarm streaks untouched.
func TestSkippedStatusSemantics(t *testing.T) {
	if StatusSkipped.Abnormal() {
		t.Fatal("skipped counts as abnormal")
	}
	if StatusSkipped.String() != "skipped" {
		t.Fatalf("String = %q", StatusSkipped.String())
	}
	s, err := ParseStatus("skipped")
	if err != nil || s != StatusSkipped {
		t.Fatalf("ParseStatus(skipped) = %v, %v", s, err)
	}

	// An open breaker must not reset the abnormal streak: the fault is still
	// there, the driver just stopped burning goroutines on it.
	v := clock.NewVirtual()
	d := New(WithClock(v), WithBreaker(noJitter(2, time.Hour)))
	d.Register(NewChecker("c", func(*Context) error { return errors.New("x") }), Threshold(10))
	d.Factory().Context("c").MarkReady()
	d.CheckNow("c")
	d.CheckNow("c") // trips
	d.CheckNow("c") // skipped
	if st, _ := d.CheckerStats("c"); st.Consecutive != 2 {
		t.Fatalf("consecutive = %d, want 2 (skip left streak alone)", st.Consecutive)
	}
}
