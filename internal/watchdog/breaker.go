package watchdog

import (
	"fmt"
	"time"
)

// BreakerState is the circuit-breaker state of one registered checker.
//
// The breaker protects the driver from its own checkers (§3.2 isolation, in
// reverse): a checker that crashes, hangs, or errors on every run is not a
// detection signal anymore — it is a defect in the watchdog itself, and
// rescheduling it at full cadence leaks a reaped goroutine per timeout and
// floods the alarm path. After BreakerConfig.Threshold consecutive such
// outcomes the breaker opens, executions are skipped (StatusSkipped) with
// exponential backoff plus jitter, a single probe run half-opens it once the
// backoff elapses, and a successful probe closes it again.
type BreakerState int

const (
	// BreakerClosed is the normal state: executions proceed.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one probe execution after the open
	// backoff elapses; its outcome decides between Closed and Open.
	BreakerHalfOpen
	// BreakerOpen skips executions until the next-eligible time.
	BreakerOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig configures the per-checker circuit breaker. The zero value
// disables the breaker; set Threshold > 0 to enable it (driver-wide via
// WithBreaker, per checker via the Breaker option).
type BreakerConfig struct {
	// Threshold is how many consecutive checker failures — StatusError,
	// StatusStuck, or StatusCrashed — trip the breaker open. <= 0 disables
	// the breaker. StatusSlow does not count: a slow checker still completes
	// and still observes the main program.
	Threshold int
	// BackoffBase is the first open interval; it doubles on every
	// consecutive trip. Zero means twice the checker's interval.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Zero means 64× BackoffBase.
	BackoffMax time.Duration
	// JitterFrac adds a uniformly random extra fraction of the backoff in
	// [0, JitterFrac), decorrelating probe storms when many checkers trip at
	// once. Zero means 0.2; negative disables jitter.
	JitterFrac float64
}

// enabled reports whether the breaker is active.
func (c BreakerConfig) enabled() bool { return c.Threshold > 0 }

// withDefaults resolves zero fields against the checker's interval.
func (c BreakerConfig) withDefaults(interval time.Duration) BreakerConfig {
	if !c.enabled() {
		return c
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * interval
		if c.BackoffBase <= 0 {
			c.BackoffBase = time.Second
		}
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 64 * c.BackoffBase
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	} else if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	return c
}

// backoff returns the capped exponential backoff for the given consecutive
// trip streak (1 = first trip). Jitter is added by the driver, which owns
// the seeded RNG.
func (c BreakerConfig) backoff(streak int) time.Duration {
	d := c.BackoffBase
	for i := 1; i < streak; i++ {
		if d >= c.BackoffMax/2 {
			return c.BackoffMax
		}
		d *= 2
	}
	if d > c.BackoffMax {
		d = c.BackoffMax
	}
	return d
}
