package watchdog

import (
	"testing"
)

func BenchmarkContextPutBytes(b *testing.B) {
	ctx := NewContext()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Put("payload", payload)
	}
}

func BenchmarkContextPutAll(b *testing.B) {
	ctx := NewContext()
	vals := map[string]any{"partition": 3, "path": "/data/p003/000001.sst"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.PutAll(vals)
	}
}

func BenchmarkOpWrapperHealthy(b *testing.B) {
	ctx := NewContext()
	site := Site{Function: "f", Op: "op"}
	body := func() error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Op(ctx, site, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckNowHealthy(b *testing.B) {
	d := New()
	d.Register(NewChecker("bench", func(*Context) error { return nil }))
	d.Factory().Context("bench").MarkReady()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CheckNow("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// noopObserver is the cheapest possible Observer; the delta between
// BenchmarkCheckNowHealthy and BenchmarkCheckNowObserved bounds the driver's
// observer-dispatch overhead (the wdobs package benchmarks the real sink).
type noopObserver struct{}

func (noopObserver) ObserveReport(Report, Status, bool) {}
func (noopObserver) ObserveAlarm(Alarm)                 {}

func BenchmarkCheckNowObserved(b *testing.B) {
	d := New(WithObserver(noopObserver{}))
	d.Register(NewChecker("bench", func(*Context) error { return nil }))
	d.Factory().Context("bench").MarkReady()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CheckNow("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicateBytes(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replicate(payload)
	}
}
