package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
)

// ContextAblationResult is E7: what happens to the disk-flusher checker on
// an in-memory kvs with and without the one-way context gating of §3.1.
type ContextAblationResult struct {
	// Rounds is the number of checker executions per variant.
	Rounds int
	// GatedFalseAlarms / UngatedFalseAlarms count spurious abnormal reports.
	GatedFalseAlarms   int
	UngatedFalseAlarms int
	// GatedSkips counts context-pending skips for the gated variant.
	GatedSkips int
}

// Render formats the ablation outcome.
func (r *ContextAblationResult) Render() string {
	t := Table{
		Title:  "§3.1 context-sync ablation (E7): disk-flusher checker on in-memory kvs",
		Header: []string{"variant", "false alarms", "skipped (context pending)"},
	}
	t.AddRow("with context gating", fmt.Sprintf("%d/%d", r.GatedFalseAlarms, r.Rounds),
		fmt.Sprintf("%d/%d", r.GatedSkips, r.Rounds))
	t.AddRow("without context gating", fmt.Sprintf("%d/%d", r.UngatedFalseAlarms, r.Rounds), "0")
	return t.Render()
}

// RunContextAblation runs E7. The ungated variant executes the same reduced
// flush mimic but with whatever (zero-valued) arguments the absent context
// yields — the Figure-3 "uninitialized variables or parameters" problem —
// and so reports disk faults a memory-only deployment cannot have.
func RunContextAblation(scratch string, rounds int) (*ContextAblationResult, error) {
	if rounds <= 0 {
		rounds = 10
	}
	res := &ContextAblationResult{Rounds: rounds}

	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{InMemory: true, WatchdogFactory: factory})
	if err != nil {
		return nil, err
	}
	defer store.Close()

	driver := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(time.Second))

	// Gated: the real generated checker, bound to the hook-fed context that
	// never becomes ready in memory-only mode.
	driver.Register(ungatedFlushMimic(store, "flusher.gated"))

	// Ungated: same checker body, but registered with an always-ready
	// context, as if the generator skipped the context-readiness guard.
	ready := watchdog.NewContext()
	ready.MarkReady()
	driver.Register(ungatedFlushMimic(store, "flusher.ungated"), watchdog.WithContext(ready))

	// Drive in-memory traffic: hooks for the indexer fire, but the flusher
	// hook never does (FlushPartition is a no-op in memory mode).
	for i := 0; i < 64; i++ {
		if err := store.Set([]byte{byte(i * 4)}, []byte("v")); err != nil {
			return nil, err
		}
	}
	store.FlushAll(true)

	for r := 0; r < rounds; r++ {
		repG, err := driver.CheckNow("flusher.gated")
		if err != nil {
			return nil, err
		}
		switch {
		case repG.Status == watchdog.StatusContextPending:
			res.GatedSkips++
		case repG.Status.Abnormal():
			res.GatedFalseAlarms++
		}
		repU, err := driver.CheckNow("flusher.ungated")
		if err != nil {
			return nil, err
		}
		if repU.Status.Abnormal() {
			res.UngatedFalseAlarms++
		}
	}
	return res, nil
}

// ungatedFlushMimic mimics the flush-to-SSTable write using the
// context-supplied target directory — exactly what hooks would provide.
// With no context the directory is "", and the open fails spuriously.
func ungatedFlushMimic(store *kvs.Store, name string) watchdog.Checker {
	return watchdog.NewChecker(name, func(ctx *watchdog.Context) error {
		dir := ctx.GetString("dir")
		site := watchdog.Site{Function: "kvs.(*Store).FlushPartition", Op: "sstable.Write"}
		return watchdog.Op(ctx, site, func() error {
			// The hook supplies the partition directory; with no context the
			// path degenerates to a nonexistent relative directory and the
			// open fails — a disk fault this memory-only deployment cannot
			// actually have.
			if dir == "" {
				dir = "partition-000"
			}
			probe := filepath.Join(dir, "wd-flush-probe.sst")
			f, err := os.OpenFile(probe, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			f.Close()
			return os.Remove(probe)
		})
	})
}

// ValidationResult is E9: alarm counts for transient faults with and
// without the mimic→probe validation chain of §5.1.
type ValidationResult struct {
	// TransientFaults is how many one-shot faults were injected.
	TransientFaults int
	// AlarmsWithoutValidation / AlarmsValidatedImpactful count raised vs
	// confirmed alarms.
	AlarmsWithoutValidation  int
	AlarmsValidatedImpactful int
	// SuppressedByProbe counts alarms the probe validator dismissed.
	SuppressedByProbe int
}

// Render formats the validation-chain outcome.
func (r *ValidationResult) Render() string {
	t := Table{
		Title:  "§5.1 validation chain (E9): mimic alarms on transient faults",
		Header: []string{"policy", "alarms raised", "confirmed impactful"},
	}
	t.AddRow("mimic alone", fmt.Sprintf("%d/%d", r.AlarmsWithoutValidation, r.TransientFaults), "—")
	t.AddRow("mimic + probe validation", fmt.Sprintf("%d/%d", r.AlarmsWithoutValidation, r.TransientFaults),
		fmt.Sprintf("%d (suppressed %d)", r.AlarmsValidatedImpactful, r.SuppressedByProbe))
	return t.Render()
}

// RunValidationChain runs E9: transient (Count=1) faults trip the mimic
// checker once; a probe validator then assesses client-visible impact and
// dismisses alarms for faults the main program absorbed.
func RunValidationChain(scratch string, faults int) (*ValidationResult, error) {
	if faults <= 0 {
		faults = 5
	}
	res := &ValidationResult{TransientFaults: faults}

	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{Dir: scratch, FlushThresholdBytes: 1 << 30,
		WatchdogFactory: factory})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	srv, err := kvs.Serve("127.0.0.1:0", store)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	addr := srv.Addr()

	probeValidator := func(watchdog.Report) bool {
		c, err := kvs.Dial(addr, time.Second)
		if err != nil {
			return true // cannot even connect: impact confirmed
		}
		defer c.Close()
		if err := c.Set("__validate__", "x"); err != nil {
			return true
		}
		_, err = c.Get("__validate__")
		return err != nil
	}

	driver := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(time.Second))
	mimic := watchdog.NewChecker("mimic.flush", func(ctx *watchdog.Context) error {
		site := watchdog.Site{Function: "kvs.(*Store).FlushPartition", Op: "sstable.Write"}
		return watchdog.Op(ctx, site, func() error {
			return store.Injector().Fire(kvs.FaultFlushWrite)
		})
	})
	readyCtx := watchdog.NewContext()
	readyCtx.MarkReady()
	driver.Register(mimic, watchdog.WithContext(readyCtx),
		watchdog.ValidateWith(probeValidator))

	var alarms []watchdog.Alarm
	driver.OnAlarm(func(a watchdog.Alarm) { alarms = append(alarms, a) })

	for i := 0; i < faults; i++ {
		// Transient environment fault: errors exactly once, then clears —
		// the main program retries successfully, so there is no lasting
		// client-visible impact.
		store.Injector().Arm(kvs.FaultFlushWrite, faultinject.Fault{
			Kind: faultinject.Error, Count: 1,
		})
		if _, err := driver.CheckNow("mimic.flush"); err != nil {
			return nil, err
		}
		store.Injector().Disarm(kvs.FaultFlushWrite)
		// Healthy run resets the alarm latch.
		if _, err := driver.CheckNow("mimic.flush"); err != nil {
			return nil, err
		}
	}
	for _, a := range alarms {
		res.AlarmsWithoutValidation++
		if a.Validated != nil && *a.Validated {
			res.AlarmsValidatedImpactful++
		} else if a.Validated != nil {
			res.SuppressedByProbe++
		}
	}
	return res, nil
}
