// Package experiment implements the paper-reproduction harness: one
// function per table/figure of the paper (see DESIGN.md's per-experiment
// index), each returning a structured result that renders as the same kind
// of table or series the paper reports.
//
// The harness is exercised three ways: unit tests (fast, scaled-down
// parameters), the root bench_test.go (go test -bench), and cmd/wdbench
// (human-readable report, optionally with the paper's original 1s/6s
// watchdog parameters).
package experiment

import (
	"fmt"
	"strings"
)

// Outcome is one cell of a detection matrix.
type Outcome int

const (
	// Missed means the detector never flagged the fault.
	Missed Outcome = iota
	// Detected means the detector flagged the fault.
	Detected
	// DetectedPinpoint means the detector flagged the fault and localized
	// the faulty operation.
	DetectedPinpoint
	// NotApplicable means the detector cannot be used in this scenario.
	NotApplicable
)

// String renders the cell the way the paper's tables mark capabilities.
func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case DetectedPinpoint:
		return "detected+pinpoint"
	case NotApplicable:
		return "n/a"
	default:
		return "MISSED"
	}
}

// Table is a simple row/column result container with fixed-width rendering.
type Table struct {
	// Title names the reproduced artifact, e.g. "Table 1 (empirical)".
	Title string
	// Header holds the column names; Rows the cells (first cell = row name).
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render pretty-prints the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
