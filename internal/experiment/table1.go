package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/detect"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// Table1Faults are the fault scenarios of the empirical Table 1
// reproduction, ordered as reported.
var Table1Faults = []string{
	"process-crash",
	"partial-hang",
	"fail-slow",
	"explicit-error",
	"silent-corruption",
}

// Table1Detectors are the compared abstractions (the paper's Table 1 rows:
// crash failure detector, error handler, watchdog).
var Table1Detectors = []string{"crash-fd", "error-handler", "watchdog"}

// Table1Result is the detection matrix for E1.
type Table1Result struct {
	// Matrix maps fault -> detector -> outcome.
	Matrix map[string]map[string]Outcome
}

// Render formats the matrix like the paper's Table 1.
func (r *Table1Result) Render() string {
	t := Table{
		Title:  "Table 1 (empirical): crash FD vs error handler vs watchdog on kvs",
		Header: append([]string{"fault"}, Table1Detectors...),
	}
	for _, f := range Table1Faults {
		row := []string{f}
		for _, d := range Table1Detectors {
			row = append(row, r.Matrix[f][d].String())
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// RunTable1 runs every Table 1 scenario against a fresh kvs store rooted in
// scratch and returns the detection matrix. Each scenario runs for roughly
// settle wall-clock time (scaled experiment parameters; pass 0 for the
// default 400ms).
func RunTable1(scratch string, settle time.Duration) (*Table1Result, error) {
	if settle <= 0 {
		settle = 400 * time.Millisecond
	}
	res := &Table1Result{Matrix: make(map[string]map[string]Outcome)}
	for _, fault := range Table1Faults {
		cell, err := runTable1Scenario(filepath.Join(scratch, fault), fault, settle)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", fault, err)
		}
		res.Matrix[fault] = cell
	}
	return res, nil
}

func runTable1Scenario(dir, fault string, settle time.Duration) (map[string]Outcome, error) {
	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:                 dir,
		FlushThresholdBytes: 1 << 30, // flush only on demand
		WatchdogFactory:     factory,
	})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	shadow, err := wdio.NewFS(filepath.Join(dir, "wd-shadow"), 0)
	if err != nil {
		return nil, err
	}

	// Watchdog: the generated kvs suite on a fast cadence.
	driver := watchdog.New(
		watchdog.WithFactory(factory),
		watchdog.WithInterval(20*time.Millisecond),
		watchdog.WithTimeout(100*time.Millisecond),
	)
	store.InstallWatchdog(driver, shadow)
	var wdDetected, wdPinpoint atomic.Bool
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Status.Abnormal() {
			wdDetected.Store(true)
			if !rep.Site.IsZero() {
				wdPinpoint.Store(true)
			}
		}
	})

	// Crash FD: heartbeat fed by a liveness goroutine.
	hb := detect.NewHeartbeat(clock.Real(), 100*time.Millisecond)
	hbStop := make(chan struct{})
	hbStopped := false
	stopHB := func() {
		if !hbStopped {
			hbStopped = true
			close(hbStop)
		}
	}
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				hb.Beat()
			}
		}
	}()
	defer stopHB()

	// Error handler: observes errors returned to the main program's own
	// operations (in-place detection).
	var handlerDetected atomic.Bool

	// Baseline healthy traffic so hooks populate and a table exists.
	for i := 0; i < 32; i++ {
		if err := store.Set([]byte{byte(i * 8)}, []byte("warmup")); err != nil {
			return nil, err
		}
	}
	store.FlushAll(true)
	// The crash FD needs at least one beat before a silence can be judged.
	for deadline := time.Now().Add(2 * time.Second); hb.Beats() == 0; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("heartbeat feeder never beat")
		}
		time.Sleep(time.Millisecond)
	}

	// Plant the fault.
	processAlive := true
	switch fault {
	case "process-crash":
		// The process dies: liveness stops, and so do the in-process
		// detectors.
		stopHB()
		processAlive = false
	case "partial-hang":
		store.Injector().Arm(kvs.FaultFlushWrite, faultinject.Fault{Kind: faultinject.Hang})
	case "fail-slow":
		store.Injector().Arm(kvs.FaultFlushWrite, faultinject.Fault{Kind: faultinject.Delay, Delay: time.Second})
	case "explicit-error":
		store.Injector().Arm(kvs.FaultWALAppend, faultinject.Fault{Kind: faultinject.Error})
	case "silent-corruption":
		paths := store.TablePaths(0)
		if len(paths) == 0 {
			return nil, fmt.Errorf("no SSTable to corrupt")
		}
		data, err := os.ReadFile(paths[0])
		if err != nil {
			return nil, err
		}
		data[9] ^= 0x40
		if err := os.WriteFile(paths[0], data, 0o644); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown fault %q", fault)
	}
	defer store.Injector().Clear()

	if processAlive {
		driver.Start()
		defer driver.Stop()
		// Main-program workload during the fault: writes and a background
		// flush, with errors feeding the error handler. Ops that hang are
		// abandoned by their goroutines.
		workStop := make(chan struct{})
		go func() {
			i := 0
			for {
				select {
				case <-workStop:
					return
				default:
				}
				key := []byte{byte(i * 16)}
				go func() {
					if err := store.Set(key, []byte("payload")); err != nil {
						handlerDetected.Store(true)
					}
				}()
				go func() {
					if err := store.FlushPartition(0, true); err != nil {
						handlerDetected.Store(true)
					}
				}()
				i++
				time.Sleep(10 * time.Millisecond)
			}
		}()
		defer close(workStop)
	}

	time.Sleep(settle)

	cell := map[string]Outcome{}
	// Crash FD verdict.
	if hb.Suspect() {
		cell["crash-fd"] = Detected
	} else {
		cell["crash-fd"] = Missed
	}
	// Error handler and watchdog verdicts are intra-process: with the
	// process gone they are not applicable.
	if !processAlive {
		cell["error-handler"] = NotApplicable
		cell["watchdog"] = NotApplicable
		return cell, nil
	}
	if handlerDetected.Load() {
		cell["error-handler"] = Detected
	} else {
		cell["error-handler"] = Missed
	}
	switch {
	case wdDetected.Load() && wdPinpoint.Load():
		cell["watchdog"] = DetectedPinpoint
	case wdDetected.Load():
		cell["watchdog"] = Detected
	default:
		cell["watchdog"] = Missed
	}
	return cell, nil
}
