package experiment

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "long-column"}}
	tab.AddRow("x", "y")
	out := tab.Render()
	for _, want := range []string{"=== demo ===", "a", "long-column", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	cases := map[Outcome]string{
		Missed: "MISSED", Detected: "detected",
		DetectedPinpoint: "detected+pinpoint", NotApplicable: "n/a",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	res, err := RunTable1(t.TempDir(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The shape the paper claims (Table 1): the crash FD catches only the
	// crash; the watchdog catches every partial fault with pinpointing; the
	// error handler catches only faults with explicit error signals.
	expect := map[string]map[string]Outcome{
		"process-crash":     {"crash-fd": Detected, "error-handler": NotApplicable, "watchdog": NotApplicable},
		"partial-hang":      {"crash-fd": Missed, "error-handler": Missed, "watchdog": DetectedPinpoint},
		"fail-slow":         {"crash-fd": Missed, "error-handler": Missed, "watchdog": DetectedPinpoint},
		"explicit-error":    {"crash-fd": Missed, "error-handler": Detected, "watchdog": DetectedPinpoint},
		"silent-corruption": {"crash-fd": Missed, "error-handler": Missed, "watchdog": DetectedPinpoint},
	}
	for fault, dets := range expect {
		for det, want := range dets {
			if got := res.Matrix[fault][det]; got != want {
				t.Errorf("%s/%s = %v, want %v", fault, det, got, want)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	res, err := RunTable2(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	mimic, signal, probe := res.DetectedBy["mimic"], res.DetectedBy["signal"], res.DetectedBy["probe"]
	// Table 2's ordering: mimic has the strongest completeness; probe the
	// weakest.
	if !(mimic > signal && signal >= probe) {
		t.Errorf("completeness ordering violated: mimic=%d signal=%d probe=%d",
			mimic, signal, probe)
	}
	if mimic < res.Scenarios-1 {
		t.Errorf("mimic completeness %d/%d too weak", mimic, res.Scenarios)
	}
	// Accuracy: probe is perfect, mimic near-perfect, signal weak.
	if res.FalseAlarms["probe"] != 0 {
		t.Errorf("probe false alarms = %d, want 0", res.FalseAlarms["probe"])
	}
	if res.FalseAlarms["mimic"] != 0 {
		t.Errorf("mimic false alarms = %d, want 0", res.FalseAlarms["mimic"])
	}
	if res.FalseAlarms["signal"] == 0 {
		t.Errorf("signal false alarms = 0; idle workload should trip progress heuristics")
	}
	// Pinpointing: probes cannot; mimics pinpoint every detection.
	if res.Pinpointed["probe"] != 0 {
		t.Errorf("probe pinpointed %d detections", res.Pinpointed["probe"])
	}
	if mimic > 0 && res.Pinpointed["mimic"] != mimic {
		t.Errorf("mimic pinpointed %d of %d detections", res.Pinpointed["mimic"], mimic)
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Fatal("render title")
	}
}

func TestZK2201MatchesPaperStory(t *testing.T) {
	res, err := RunZK2201(t.TempDir(), 30*time.Millisecond, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WritesHung {
		t.Error("writes did not hang")
	}
	if !res.ReadsHealthy {
		t.Error("reads broke (should be partial failure)")
	}
	if res.HeartbeatDetected {
		t.Error("heartbeat FD detected (paper: it reports healthy)")
	}
	if res.AdminDetected {
		t.Error("admin command detected (paper: it reports healthy)")
	}
	if res.FalconDetected {
		t.Error("layered spies detected (their layer signals all stay live)")
	}
	if res.WatchdogLatency < 0 {
		t.Fatal("watchdog never detected")
	}
	maxLatency := 4 * (30*time.Millisecond + 150*time.Millisecond)
	if res.WatchdogLatency > maxLatency {
		t.Errorf("watchdog latency %v > %v", res.WatchdogLatency, maxLatency)
	}
	if res.Site.Op != "net.Write" {
		t.Errorf("pinpoint = %v", res.Site)
	}
	if !strings.Contains(res.Render(), "ZOOKEEPER-2201") {
		t.Fatal("render title")
	}
}

func TestContextAblation(t *testing.T) {
	res, err := RunContextAblation(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.GatedFalseAlarms != 0 {
		t.Errorf("gated checker raised %d false alarms", res.GatedFalseAlarms)
	}
	if res.GatedSkips != res.Rounds {
		t.Errorf("gated skips = %d, want %d", res.GatedSkips, res.Rounds)
	}
	if res.UngatedFalseAlarms != res.Rounds {
		t.Errorf("ungated false alarms = %d, want %d (every run spurious)",
			res.UngatedFalseAlarms, res.Rounds)
	}
	if !strings.Contains(res.Render(), "context-sync ablation") {
		t.Fatal("render title")
	}
}

func TestValidationChain(t *testing.T) {
	res, err := RunValidationChain(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlarmsWithoutValidation != res.TransientFaults {
		t.Errorf("raised %d alarms for %d transient faults",
			res.AlarmsWithoutValidation, res.TransientFaults)
	}
	if res.SuppressedByProbe != res.TransientFaults {
		t.Errorf("probe suppressed %d of %d (transient faults have no impact)",
			res.SuppressedByProbe, res.TransientFaults)
	}
	if res.AlarmsValidatedImpactful != 0 {
		t.Errorf("impactful = %d, want 0", res.AlarmsValidatedImpactful)
	}
	if !strings.Contains(res.Render(), "validation chain") {
		t.Fatal("render title")
	}
}

func TestDiskCheckerGenerations(t *testing.T) {
	res, err := RunDiskChecker(t.TempDir(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	healthy := res.Matrix["none (healthy)"]
	if healthy["v1"] != Missed || healthy["v2"] != Missed {
		t.Errorf("healthy volume produced detections: %v", healthy)
	}
	errs := res.Matrix["write errors"]
	if errs["v1"] != Missed {
		t.Errorf("v1 detected write errors (it only checks permissions): %v", errs["v1"])
	}
	if errs["v2"] != DetectedPinpoint {
		t.Errorf("v2 on write errors = %v, want detected+pinpoint", errs["v2"])
	}
	hangs := res.Matrix["write hangs"]
	if hangs["v1"] != Missed {
		t.Errorf("v1 detected hangs: %v", hangs["v1"])
	}
	if hangs["v2"] == Missed {
		t.Errorf("v2 missed the hanging volume")
	}
	if !strings.Contains(res.Render(), "disk-checker generations") {
		t.Fatal("render title")
	}
}

func TestCheckerCoverageMonotone(t *testing.T) {
	res, err := RunCheckerCoverage(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detected) < 5 {
		t.Fatalf("suite sizes = %d", len(res.Detected))
	}
	for i := 1; i < len(res.Detected); i++ {
		if res.Detected[i] < res.Detected[i-1] {
			t.Fatalf("coverage not monotone: %v", res.Detected)
		}
	}
	last := res.Detected[len(res.Detected)-1]
	if last != res.Scenarios {
		t.Errorf("full suite detected %d/%d", last, res.Scenarios)
	}
	if res.Detected[0] >= last {
		t.Errorf("single checker already covers everything: %v", res.Detected)
	}
	if !strings.Contains(res.Render(), "comprehensiveness") {
		t.Fatal("render title")
	}
}

func TestOverheadShape(t *testing.T) {
	res, err := RunOverhead(t.TempDir(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"baseline", "hooks", "full"} {
		if res.PacedNs[m] <= 0 || res.SaturationNs[m] <= 0 {
			t.Fatalf("non-positive measurements: %+v", res)
		}
	}
	// The paper's claim: checking does not slow fault-free execution at a
	// realistic service rate. Allow generous CI noise; the paced full-
	// watchdog run must not, say, double the per-op latency.
	if res.PacedNs["full"] > 2.0*res.PacedNs["baseline"] {
		t.Errorf("paced full watchdog = %.0f ns/op vs baseline %.0f (> 100%% overhead)",
			res.PacedNs["full"], res.PacedNs["baseline"])
	}
	if !strings.Contains(res.Render(), "overhead") {
		t.Fatal("render title")
	}
}

func TestReductionOverTargetSystems(t *testing.T) {
	wd, _ := os.Getwd()
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunReduction(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 3 {
		t.Fatalf("systems = %d", len(res.Systems))
	}
	total := 0
	for _, row := range res.Systems {
		if row.Regions == 0 || row.Ops == 0 {
			t.Errorf("%s: regions=%d ops=%d", row.Package, row.Regions, row.Ops)
		}
		if row.MeanRatio <= 0 || row.MeanRatio >= 1 {
			t.Errorf("%s: reduction ratio %v out of (0,1)", row.Package, row.MeanRatio)
		}
		total += row.Regions
	}
	if total < 10 {
		t.Errorf("total regions %d; paper reports tens of checkers", total)
	}
	if !strings.Contains(res.Render(), "program logic reduction") {
		t.Fatal("render title")
	}
}
