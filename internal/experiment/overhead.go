package experiment

import (
	"fmt"
	"path/filepath"
	"time"

	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// OverheadResult is E6: per-operation cost of the kvs write path under
// three watchdog configurations, supporting §3.2's claim that concurrent
// checking does not slow the main program. Two workloads are measured:
//
//   - paced: a fixed-rate service workload (the deployment the paper talks
//     about); per-op latency is measured around each operation.
//   - saturation: a single thread writing as fast as it can; any background
//     I/O the checkers do shows up as lost throughput. This is the
//     worst case the paper's §3.3 caveat ("we need to prioritize checking
//     with limited resources") is about.
type OverheadResult struct {
	// Ops is the number of mutations per configuration.
	Ops int
	// PacedNs[mode] and SaturationNs[mode] are mean ns per mutation for
	// modes "baseline", "hooks", "full".
	PacedNs      map[string]float64
	SaturationNs map[string]float64
}

var overheadModes = []string{"baseline", "hooks", "full"}

// Render formats the comparison.
func (r *OverheadResult) Render() string {
	t := Table{
		Title:  "§3.2 overhead (E6): kvs mutation path, three watchdog configurations",
		Header: []string{"configuration", "paced 20k ops/s (ns/op)", "vs base", "saturation (ns/op)", "vs base"},
	}
	rel := func(v, base float64) string {
		if base == 0 {
			return "—"
		}
		return fmt.Sprintf("%+.1f%%", 100*(v-base)/base)
	}
	label := map[string]string{
		"baseline": "baseline (no watchdog)",
		"hooks":    "hooks only",
		"full":     "full watchdog (100ms cadence)",
	}
	for _, m := range overheadModes {
		t.AddRow(label[m],
			fmt.Sprintf("%.0f", r.PacedNs[m]), rel(r.PacedNs[m], r.PacedNs["baseline"]),
			fmt.Sprintf("%.0f", r.SaturationNs[m]), rel(r.SaturationNs[m], r.SaturationNs["baseline"]))
	}
	return t.Render()
}

// RunOverhead measures the three configurations (ops = mutations per
// configuration per workload; 0 uses 20000).
func RunOverhead(scratch string, ops int) (*OverheadResult, error) {
	if ops <= 0 {
		ops = 20000
	}
	res := &OverheadResult{
		Ops:          ops,
		PacedNs:      make(map[string]float64),
		SaturationNs: make(map[string]float64),
	}
	// Best-of-3 per cell: the minimum is robust against flush/compaction
	// cycles and OS noise landing inside one trial.
	const trials = 3
	for _, mode := range overheadModes {
		for _, paced := range []bool{true, false} {
			best := 0.0
			for trial := 0; trial < trials; trial++ {
				dir := filepath.Join(scratch, fmt.Sprintf("%s-paced%v-t%d", mode, paced, trial))
				nsPerOp, err := runOverheadMode(dir, mode, ops, paced)
				if err != nil {
					return nil, fmt.Errorf("overhead %s: %w", mode, err)
				}
				if best == 0 || nsPerOp < best {
					best = nsPerOp
				}
			}
			if paced {
				res.PacedNs[mode] = best
			} else {
				res.SaturationNs[mode] = best
			}
		}
	}
	return res, nil
}

func runOverheadMode(dir, mode string, ops int, paced bool) (float64, error) {
	var factory *watchdog.Factory
	if mode != "baseline" {
		factory = watchdog.NewFactory()
	}
	store, err := kvs.Open(kvs.Config{Dir: dir, WatchdogFactory: factory})
	if err != nil {
		return 0, err
	}
	defer store.Close()
	store.Start() // background flusher keeps the checked working set bounded
	if mode == "full" {
		shadow, err := wdio.NewFS(filepath.Join(dir, "shadow"), 0)
		if err != nil {
			return 0, err
		}
		driver := watchdog.New(
			watchdog.WithFactory(factory),
			watchdog.WithInterval(100*time.Millisecond),
			watchdog.WithTimeout(2*time.Second),
		)
		store.InstallWatchdog(driver, shadow)
		driver.Start()
		defer driver.Stop()
	}
	val := []byte("overhead-measurement-value-0123456789")
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("oh/key/%04d", i))
	}
	// Warmup.
	for i := 0; i < 1000; i++ {
		if err := store.Set(keys[i%len(keys)], val); err != nil {
			return 0, err
		}
	}

	if paced {
		// 20k ops/s service rate: measure per-op latency only. Cap the
		// paced run so the experiment stays fast.
		n := ops
		if n > 4000 {
			n = 4000
		}
		var total time.Duration
		tick := time.NewTicker(50 * time.Microsecond)
		defer tick.Stop()
		for i := 0; i < n; i++ {
			<-tick.C
			start := time.Now()
			if err := store.Set(keys[i%len(keys)], val); err != nil {
				return 0, err
			}
			if i%8 == 0 {
				if _, _, err := store.Get(keys[i%len(keys)]); err != nil {
					return 0, err
				}
			}
			total += time.Since(start)
		}
		return float64(total.Nanoseconds()) / float64(n), nil
	}

	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := store.Set(keys[i%len(keys)], val); err != nil {
			return 0, err
		}
		if i%8 == 0 {
			if _, _, err := store.Get(keys[i%len(keys)]); err != nil {
				return 0, err
			}
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops), nil
}
