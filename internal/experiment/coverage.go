package experiment

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// CoverageResult is E10: fault coverage as a function of mimic-suite size —
// the "comprehensiveness" axis of §3.1 ("a watchdog can execute as many
// checkers as necessary to catch faults comprehensively"), quantified.
type CoverageResult struct {
	// Scenarios is the fault sweep size.
	Scenarios int
	// Detected[k] is the number of scenarios detected with the first k+1
	// checkers registered.
	Detected []int
	// CheckerNames is the registration order.
	CheckerNames []string
}

// Render formats the coverage series.
func (r *CoverageResult) Render() string {
	t := Table{
		Title:  "§3.1 comprehensiveness (E10): fault coverage vs mimic-suite size",
		Header: []string{"checkers registered", "suite", fmt.Sprintf("faults detected (of %d)", r.Scenarios)},
	}
	for k, det := range r.Detected {
		t.AddRow(fmt.Sprint(k+1), r.CheckerNames[k], fmt.Sprintf("%d/%d", det, r.Scenarios))
	}
	return t.Render()
}

// RunCheckerCoverage runs the Table-2 fault sweep against growing subsets
// of the kvs mimic suite.
func RunCheckerCoverage(scratch string, settle time.Duration) (*CoverageResult, error) {
	if settle <= 0 {
		settle = 250 * time.Millisecond
	}
	scenarios := table2Scenarios()
	res := &CoverageResult{Scenarios: len(scenarios)}

	// Discover the suite order once.
	probeStore, err := kvs.Open(kvs.Config{Dir: filepath.Join(scratch, "probe")})
	if err != nil {
		return nil, err
	}
	probeShadow, err := wdio.NewFS(filepath.Join(scratch, "probe-shadow"), 0)
	if err != nil {
		probeStore.Close()
		return nil, err
	}
	suite := probeStore.MimicCheckers(probeShadow)
	for _, c := range suite {
		res.CheckerNames = append(res.CheckerNames, c.Checker.Name())
	}
	probeStore.Close()

	for k := 1; k <= len(suite); k++ {
		detected := 0
		for i := range scenarios {
			sc := &scenarios[i]
			dir := filepath.Join(scratch, fmt.Sprintf("k%d-s%d", k, i))
			hit, err := runCoverageOnce(dir, k, sc, settle)
			if err != nil {
				return nil, fmt.Errorf("k=%d %s: %w", k, sc.name, err)
			}
			if hit {
				detected++
			}
		}
		res.Detected = append(res.Detected, detected)
	}
	return res, nil
}

func runCoverageOnce(dir string, k int, sc *table2Scenario, settle time.Duration) (bool, error) {
	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:                 dir,
		FlushThresholdBytes: 1 << 30,
		WatchdogFactory:     factory,
	})
	if err != nil {
		return false, err
	}
	defer store.Close()
	shadow, err := wdio.NewFS(filepath.Join(dir, "shadow"), 0)
	if err != nil {
		return false, err
	}
	driver := watchdog.New(
		watchdog.WithFactory(factory),
		watchdog.WithTimeout(settle/2),
	)
	for i, c := range store.MimicCheckers(shadow) {
		if i >= k {
			break
		}
		if c.HookGated {
			driver.Register(c.Checker)
		} else {
			ready := watchdog.NewContext()
			ready.MarkReady()
			driver.Register(c.Checker, watchdog.WithContext(ready))
		}
	}
	var abnormal atomic.Int64
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Status.Abnormal() {
			abnormal.Add(1)
		}
	})

	// Warmup so hooks fire and tables exist, then plant the fault.
	for i := 0; i < 24; i++ {
		if err := store.Set([]byte(fmt.Sprintf("warm%03d", i)), []byte("v")); err != nil {
			return false, err
		}
	}
	store.FlushAll(true)
	if err := sc.plant(store); err != nil {
		return false, err
	}
	defer store.Injector().Clear()

	for r := 0; r < 2; r++ {
		done := make(chan struct{})
		go func() {
			driver.CheckAll()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(settle):
		}
	}
	return abnormal.Load() > 0, nil
}
