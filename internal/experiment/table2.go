package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/checkers"
	"gowatchdog/internal/watchdog/wdio"
)

// Table2Result is the empirical reproduction of the paper's Table 2: the
// three checker styles scored on completeness, accuracy, and pinpointing.
type Table2Result struct {
	// Scenarios is the number of fault scenarios in the completeness sweep.
	Scenarios int
	// DetectedBy maps style -> number of scenarios detected.
	DetectedBy map[string]int
	// FalseAlarms maps style -> alarms raised across the fault-free runs.
	FalseAlarms map[string]int
	// FaultFreeRuns is the number of fault-free checker rounds per style.
	FaultFreeRuns int
	// Pinpointed maps style -> detections that carried a site.
	Pinpointed map[string]int
}

// Styles in reporting order.
var table2Styles = []string{"probe", "signal", "mimic"}

// Render formats the result like Table 2.
func (r *Table2Result) Render() string {
	t := Table{
		Title: "Table 2 (empirical): probe vs signal vs mimic checkers on kvs",
		Header: []string{"style", "completeness", "accuracy", "pinpoint",
			fmt.Sprintf("(n=%d faults, %d fault-free rounds)", r.Scenarios, r.FaultFreeRuns)},
	}
	for _, s := range table2Styles {
		det := r.DetectedBy[s]
		completeness := fmt.Sprintf("%d/%d", det, r.Scenarios)
		accuracy := fmt.Sprintf("%d false alarms", r.FalseAlarms[s])
		pin := "0/0"
		if det > 0 {
			pin = fmt.Sprintf("%d/%d", r.Pinpointed[s], det)
		}
		t.AddRow(s, completeness, accuracy, pin, "")
	}
	return t.Render()
}

// table2Scenario plants one fault in a running store.
type table2Scenario struct {
	name  string
	plant func(store *kvs.Store) error
}

// armFault returns a plant function arming one fault point.
func armFault(point string, f faultinject.Fault) func(*kvs.Store) error {
	return func(s *kvs.Store) error {
		s.Injector().Arm(point, f)
		return nil
	}
}

// corruptFirstTable flips a data byte in the newest SSTable of the first
// partition that has one.
func corruptFirstTable(s *kvs.Store) error {
	for i := 0; i < s.Partitions(); i++ {
		paths := s.TablePaths(i)
		if len(paths) == 0 {
			continue
		}
		data, err := os.ReadFile(paths[0])
		if err != nil {
			return err
		}
		data[9] ^= 0x40
		return os.WriteFile(paths[0], data, 0o644)
	}
	return fmt.Errorf("no SSTable to corrupt")
}

// table2Scenarios is the fault sweep: foreground and background faults of
// the kinds the paper motivates (§1), including one with no error signal at
// all (silent corruption).
func table2Scenarios() []table2Scenario {
	return []table2Scenario{
		{"flusher-hang", armFault(kvs.FaultFlushWrite, faultinject.Fault{Kind: faultinject.Hang})},
		{"flusher-error", armFault(kvs.FaultFlushWrite, faultinject.Fault{Kind: faultinject.Error})},
		{"compaction-hang", armFault(kvs.FaultCompactMerge, faultinject.Fault{Kind: faultinject.Hang})},
		{"wal-error", armFault(kvs.FaultWALAppend, faultinject.Fault{Kind: faultinject.Error})},
		{"indexer-read-error", armFault(kvs.FaultIndexerGet, faultinject.Fault{Kind: faultinject.Error})},
		{"silent-corruption", corruptFirstTable},
	}
}

// RunTable2 scores the three checker styles. scratch is a work directory;
// settle bounds each scenario (0 = default 250ms).
func RunTable2(scratch string, settle time.Duration) (*Table2Result, error) {
	if settle <= 0 {
		settle = 250 * time.Millisecond
	}
	scenarios := table2Scenarios()
	res := &Table2Result{
		Scenarios:   len(scenarios),
		DetectedBy:  map[string]int{},
		FalseAlarms: map[string]int{},
		Pinpointed:  map[string]int{},
	}

	// Completeness: each scenario runs each style once.
	for i := range scenarios {
		sc := &scenarios[i]
		for _, style := range table2Styles {
			dir := filepath.Join(scratch, fmt.Sprintf("s%d-%s", i, style))
			detected, pinpointed, _, err := runTable2Once(dir, style, sc, settle, 3)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sc.name, style, err)
			}
			if detected {
				res.DetectedBy[style]++
				if pinpointed {
					res.Pinpointed[style]++
				}
			}
		}
	}

	// Accuracy: fault-free runs with a bursty-then-idle workload; signal
	// checkers' progress heuristics fire spuriously during idle.
	const faultFreeRounds = 6
	res.FaultFreeRuns = faultFreeRounds
	for _, style := range table2Styles {
		dir := filepath.Join(scratch, "ff-"+style)
		_, _, alarms, err := runTable2Once(dir, style, nil, settle, faultFreeRounds)
		if err != nil {
			return nil, fmt.Errorf("fault-free/%s: %w", style, err)
		}
		res.FalseAlarms[style] = alarms
	}
	return res, nil
}

// runTable2Once runs one style against one (optional) fault and reports
// (detected, pinpointed, abnormalReports).
func runTable2Once(dir, style string, sc *table2Scenario, settle time.Duration, rounds int) (bool, bool, int, error) {
	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:                 dir,
		FlushThresholdBytes: 1 << 30,
		WatchdogFactory:     factory,
	})
	if err != nil {
		return false, false, 0, err
	}
	defer store.Close()
	srv, err := kvs.Serve("127.0.0.1:0", store)
	if err != nil {
		return false, false, 0, err
	}
	defer srv.Close()

	driver := watchdog.New(
		watchdog.WithFactory(factory),
		watchdog.WithTimeout(settle/2),
	)
	if err := registerStyle(driver, style, store, srv.Addr(), dir); err != nil {
		return false, false, 0, err
	}

	var abnormal, pinpoints atomic.Int64
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Status.Abnormal() {
			abnormal.Add(1)
			if !rep.Site.IsZero() {
				pinpoints.Add(1)
			}
		}
	})

	// Warmup traffic (populates hooks, tables, and signal baselines).
	client, err := kvs.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		return false, false, 0, err
	}
	defer client.Close()
	for i := 0; i < 24; i++ {
		if err := client.Set(fmt.Sprintf("warm%03d", i), "v"); err != nil {
			return false, false, 0, err
		}
	}
	store.FlushAll(true)
	driver.CheckAll() // seed stateful (progress) signal checkers

	if sc != nil {
		if err := sc.plant(store); err != nil {
			return false, false, 0, err
		}
		defer store.Injector().Clear()
	}

	// Checker rounds interleaved with the main program's ongoing work, so
	// progress counters advance whenever the respective component is
	// actually healthy. A stuck checker run is abandoned after its timeout
	// (the driver has already recorded the liveness report). Activity runs
	// on its own goroutines because it may wedge under hang faults.
	var seq atomic.Int64
	activity := func() {
		n := seq.Add(1)
		store.Set([]byte(fmt.Sprintf("work%04d", n)), []byte("x"))
		store.FlushAll(true)
		store.CompactAll()
	}
	for r := 0; r < rounds; r++ {
		if sc != nil || r < rounds/2 {
			go activity()
		}
		// Fault-free accuracy workload goes idle in later rounds.
		time.Sleep(settle / 8)
		done := make(chan struct{})
		go func() {
			driver.CheckAll()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(settle):
		}
	}
	return abnormal.Load() > 0, pinpoints.Load() > 0, int(abnormal.Load()), nil
}

// registerStyle installs the checkers for one style.
func registerStyle(driver *watchdog.Driver, style string, store *kvs.Store,
	addr, dir string) error {
	switch style {
	case "probe":
		// A client-like probe exercising the public API end to end with
		// pre-supplied input.
		driver.Register(checkers.Probe("probe.setget", func() error {
			c, err := kvs.Dial(addr, time.Second)
			if err != nil {
				return err
			}
			defer c.Close()
			if err := c.Set("__probe__", "ping"); err != nil {
				return err
			}
			v, err := c.Get("__probe__")
			if err != nil {
				return err
			}
			if v != "ping" {
				return fmt.Errorf("probe read back %q", v)
			}
			return nil
		}), watchdog.WithContext(checkers.ProbeContext()))
	case "signal":
		m := store.Metrics()
		driver.Register(checkers.CounterStalled("signal.flush-progress", "flushes",
			m.Counter("kvs.flushes")), watchdog.WithContext(checkers.ProbeContext()))
		driver.Register(checkers.CounterStalled("signal.mutation-progress", "mutations",
			m.Counter("kvs.mutations")), watchdog.WithContext(checkers.ProbeContext()))
		driver.Register(checkers.CounterRising("signal.error-rate", "errors",
			m.Counter("kvs.errors")), watchdog.WithContext(checkers.ProbeContext()))
		driver.Register(checkers.GaugeAbove("signal.repl-queue", "repl-queue",
			m.Gauge("kvs.repl.queue"), 512), watchdog.WithContext(checkers.ProbeContext()))
	case "mimic":
		shadow, err := wdio.NewFS(filepath.Join(dir, "wd-shadow"), 0)
		if err != nil {
			return err
		}
		store.InstallWatchdog(driver, shadow)
	default:
		return fmt.Errorf("unknown style %q", style)
	}
	return nil
}
