package experiment

import (
	"fmt"
	"os"
	"path/filepath"

	"gowatchdog/internal/autowatchdog"
)

// ReductionResult is E4: the Figure 2–3 reproduction. AutoWatchdog analyzes
// the three target systems; per system we report regions (= generated
// checkers), retained vulnerable operations, and reduction ratios — the
// "tens of checkers" scale claim of §4.2.
type ReductionResult struct {
	// Systems holds one row per analyzed package.
	Systems []ReductionRow
}

// ReductionRow summarizes one package's analysis.
type ReductionRow struct {
	Package    string
	Regions    int
	Ops        int
	Statements int
	// MeanRatio is the mean per-region reduction ratio (ops/statements).
	MeanRatio float64
}

// Render formats the reduction summary.
func (r *ReductionResult) Render() string {
	t := Table{
		Title:  "Figures 2–3 (E4): program logic reduction over the target systems",
		Header: []string{"package", "regions (=checkers)", "vulnerable ops retained", "statements analyzed", "mean reduction ratio"},
	}
	total := ReductionRow{Package: "TOTAL"}
	for _, row := range r.Systems {
		t.AddRow(row.Package, fmt.Sprint(row.Regions), fmt.Sprint(row.Ops),
			fmt.Sprint(row.Statements), fmt.Sprintf("%.3f", row.MeanRatio))
		total.Regions += row.Regions
		total.Ops += row.Ops
		total.Statements += row.Statements
	}
	t.AddRow(total.Package, fmt.Sprint(total.Regions), fmt.Sprint(total.Ops),
		fmt.Sprint(total.Statements), "")
	return t.Render()
}

// RunReduction analyzes the three target systems under moduleRoot.
func RunReduction(moduleRoot string) (*ReductionResult, error) {
	res := &ReductionResult{}
	for _, pkg := range []string{"internal/kvs", "internal/coord", "internal/dfs"} {
		dir := filepath.Join(moduleRoot, pkg)
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("reduction: %w", err)
		}
		a, err := autowatchdog.Analyze(autowatchdog.Config{PackageDir: dir})
		if err != nil {
			return nil, err
		}
		row := ReductionRow{Package: a.Package, Regions: len(a.Regions), Ops: a.TotalOps()}
		var ratioSum float64
		for _, reg := range a.Regions {
			row.Statements += reg.Statements
			ratioSum += reg.ReductionRatio()
		}
		if len(a.Regions) > 0 {
			row.MeanRatio = ratioSum / float64(len(a.Regions))
		}
		res.Systems = append(res.Systems, row)
	}
	return res, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("experiment: go.mod not found above %s", dir)
		}
		dir = parent
	}
}
