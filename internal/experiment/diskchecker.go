package experiment

import (
	"fmt"
	"path/filepath"
	"time"

	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
)

// DiskCheckerResult is E8: the two generations of the HDFS-style disk
// checker (§3.3 / HADOOP-13738) against volume fault kinds.
type DiskCheckerResult struct {
	// Matrix maps fault kind -> checker generation -> outcome.
	Matrix map[string]map[string]Outcome
	// Kinds in reporting order.
	Kinds []string
}

// Render formats the matrix.
func (r *DiskCheckerResult) Render() string {
	t := Table{
		Title:  "§3.3 disk-checker generations (E8): dfs DataNode, partial volume fault",
		Header: []string{"volume fault", "v1 permissions-only", "v2 mimic real I/O"},
	}
	for _, k := range r.Kinds {
		t.AddRow(k, r.Matrix[k]["v1"].String(), r.Matrix[k]["v2"].String())
	}
	return t.Render()
}

// RunDiskChecker runs E8: for each fault kind on volume 0 of a two-volume
// DataNode, run both checker generations and record detection.
func RunDiskChecker(scratch string, timeout time.Duration) (*DiskCheckerResult, error) {
	if timeout <= 0 {
		timeout = 200 * time.Millisecond
	}
	kinds := []struct {
		name  string
		fault *faultinject.Fault
	}{
		{"none (healthy)", nil},
		{"write errors", &faultinject.Fault{Kind: faultinject.Error}},
		{"write hangs", &faultinject.Fault{Kind: faultinject.Hang}},
	}
	res := &DiskCheckerResult{Matrix: make(map[string]map[string]Outcome)}
	for i, k := range kinds {
		res.Kinds = append(res.Kinds, k.name)
		cell, err := runDiskCheckerOnce(filepath.Join(scratch, fmt.Sprintf("k%d", i)), k.fault, timeout)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.name, err)
		}
		res.Matrix[k.name] = cell
	}
	return res, nil
}

func runDiskCheckerOnce(dir string, fault *faultinject.Fault, timeout time.Duration) (map[string]Outcome, error) {
	factory := watchdog.NewFactory()
	dn, err := dfs.New(dfs.Config{
		VolumeDirs:      []string{filepath.Join(dir, "vol0"), filepath.Join(dir, "vol1")},
		WatchdogFactory: factory,
	})
	if err != nil {
		return nil, err
	}
	driver := watchdog.New(watchdog.WithFactory(factory), watchdog.WithTimeout(timeout))
	dn.InstallWatchdog(driver)

	// Real traffic populates the mimic checker's context (block 1 lands on
	// volume 1, which stays healthy).
	if _, err := dn.WriteBlock([]byte("real block payload")); err != nil {
		return nil, err
	}

	if fault != nil {
		dn.Injector().Arm(dfs.FaultVolumeWritePrefix+"0", *fault)
		defer dn.Injector().Clear()
	}

	cell := map[string]Outcome{}
	for gen, checker := range map[string]string{"v1": "dfs.disk.v1", "v2": "dfs.disk"} {
		repCh := make(chan watchdog.Report, 1)
		go func() {
			rep, _ := driver.CheckNow(checker)
			repCh <- rep
		}()
		var rep watchdog.Report
		select {
		case rep = <-repCh:
		case <-time.After(timeout * 4):
			rep = watchdog.Report{Status: watchdog.StatusStuck}
		}
		switch {
		case rep.Status.Abnormal() && !rep.Site.IsZero():
			cell[gen] = DetectedPinpoint
		case rep.Status.Abnormal():
			cell[gen] = Detected
		default:
			cell[gen] = Missed
		}
	}
	return cell, nil
}
