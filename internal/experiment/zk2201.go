package experiment

import (
	"fmt"
	"path/filepath"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/coord"
	"gowatchdog/internal/detect"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// ZK2201Result is the reproduction of the paper's §4.2 case study: a
// network issue blocks a remote sync inside a critical section, hanging all
// write request processing; heartbeat detection and the admin command show
// the leader healthy; the generated watchdog detects and pinpoints.
type ZK2201Result struct {
	// Interval and Timeout are the watchdog parameters used.
	Interval, Timeout time.Duration
	// Horizon is how long each extrinsic detector was given.
	Horizon time.Duration
	// HeartbeatDetected / AdminDetected / FalconDetected report whether the
	// extrinsic detectors flagged the leader within the horizon.
	HeartbeatDetected bool
	AdminDetected     bool
	FalconDetected    bool
	// WritesHung confirms the gray failure manifested (write wedged, reads
	// fine).
	WritesHung   bool
	ReadsHealthy bool
	// WatchdogLatency is time-to-detect from fault injection; negative
	// means never detected.
	WatchdogLatency time.Duration
	// Site is the pinpointed blocked call.
	Site watchdog.Site
	// PaperEquivalent extrapolates the latency to the paper's 1s/6s
	// parameters (detection ≈ interval + timeout).
	PaperEquivalent time.Duration
}

// Render formats the case study outcome.
func (r *ZK2201Result) Render() string {
	t := Table{
		Title:  "§4.2 case study (ZOOKEEPER-2201): detection comparison",
		Header: []string{"detector", "outcome", "time-to-detect"},
	}
	mark := func(b bool) string {
		if b {
			return "detected"
		}
		return "healthy (MISSED)"
	}
	t.AddRow("heartbeat FD", mark(r.HeartbeatDetected), fmt.Sprintf("— (horizon %v)", r.Horizon))
	t.AddRow("admin command (ruok)", mark(r.AdminDetected), fmt.Sprintf("— (horizon %v)", r.Horizon))
	t.AddRow("Falcon-style layered spies", mark(r.FalconDetected), fmt.Sprintf("— (horizon %v)", r.Horizon))
	wd := "MISSED"
	lat := "—"
	if r.WatchdogLatency >= 0 {
		wd = "detected+pinpoint @ " + r.Site.String()
		lat = r.WatchdogLatency.String()
	}
	t.AddRow(fmt.Sprintf("mimic watchdog (%v/%v)", r.Interval, r.Timeout), wd, lat)
	out := t.Render()
	out += fmt.Sprintf("writes hung: %v, reads healthy: %v\n", r.WritesHung, r.ReadsHealthy)
	out += fmt.Sprintf("extrapolated to paper parameters (1s interval / 6s timeout): ≈%v (paper: ~7s)\n",
		r.PaperEquivalent)
	return out
}

// RunZK2201 reproduces the case study with the given watchdog parameters
// (zero values use the scaled defaults: 50ms interval, 300ms timeout).
func RunZK2201(scratch string, interval, timeout time.Duration) (*ZK2201Result, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if timeout <= 0 {
		timeout = 300 * time.Millisecond
	}
	res := &ZK2201Result{Interval: interval, Timeout: timeout, WatchdogLatency: -1}

	follower, err := coord.NewFollower("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer follower.Close()

	factory := watchdog.NewFactory()
	leader := coord.NewLeader(coord.LeaderConfig{
		FollowerAddr:      follower.Addr(),
		HeartbeatInterval: interval / 2,
		WatchdogFactory:   factory,
	})
	hb := detect.NewHeartbeat(clock.Real(), timeout)
	leader.OnHeartbeat(hb.Beat)
	// Falcon-style layers: the app layer feeds from the leader's heartbeat
	// thread, the process layer from a liveness goroutine (the process is
	// alive, after all).
	falcon := detect.NewFalcon(clock.Real())
	appFeed := falcon.AddLayer("app", timeout)
	procFeed := falcon.AddLayer("process", timeout)
	leader.OnHeartbeat(appFeed)
	procStop := make(chan struct{})
	defer close(procStop)
	go func() {
		tick := time.NewTicker(interval / 2)
		defer tick.Stop()
		for {
			select {
			case <-procStop:
				return
			case <-tick.C:
				procFeed()
			}
		}
	}()
	leader.Start()
	defer leader.Close()

	admin, err := coord.ServeAdmin("127.0.0.1:0", leader)
	if err != nil {
		return nil, err
	}
	defer admin.Close()

	shadow, err := wdio.NewFS(filepath.Join(scratch, "shadow"), 0)
	if err != nil {
		return nil, err
	}
	driver := watchdog.New(
		watchdog.WithFactory(factory),
		watchdog.WithInterval(interval),
		watchdog.WithTimeout(timeout),
	)
	leader.InstallWatchdog(driver, shadow)
	detected := make(chan watchdog.Report, 16)
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Checker == "coord.sync" && rep.Status == watchdog.StatusStuck {
			select {
			case detected <- rep:
			default:
			}
		}
	})

	// Healthy traffic proves the path and populates hooks.
	if err := leader.SubmitWait(coord.OpCreate, "/app", []byte("x"), 5*time.Second); err != nil {
		return nil, err
	}
	driver.Start()
	defer driver.Stop()

	// Fault: the network to the follower black-holes.
	faultStart := time.Now()
	leader.Injector().Arm(coord.FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
	defer leader.Injector().Clear()

	// The write pipeline wedges...
	writeDone := leader.Submit(coord.OpCreate, "/app/hung", nil)
	horizon := timeout * 4
	res.Horizon = horizon
	select {
	case <-writeDone:
		res.WritesHung = false
	case <-time.After(timeout):
		res.WritesHung = true
	}
	// ...while reads keep working.
	if _, _, err := leader.Tree().Get("/app"); err == nil {
		res.ReadsHealthy = true
	}

	// Wait for the watchdog to detect.
	select {
	case rep := <-detected:
		res.WatchdogLatency = time.Since(faultStart)
		res.Site = rep.Site
	case <-time.After(horizon):
	}

	// Give the extrinsic detectors the full horizon before judging them.
	if remaining := horizon - time.Since(faultStart); remaining > 0 {
		time.Sleep(remaining)
	}
	res.HeartbeatDetected = hb.Suspect()
	res.AdminDetected = coord.AdminRuok(admin.Addr()) != nil
	res.FalconDetected = falcon.Suspect()

	// Extrapolate to paper parameters: detection ≈ check interval + timeout.
	if res.WatchdogLatency >= 0 {
		res.PaperEquivalent = time.Second + 6*time.Second
	}
	return res, nil
}
