// Package sstable implements the sorted immutable table files the kvs
// flusher produces and the compaction manager merges.
//
// File layout:
//
//	magic            8 bytes  "GWSSTB01"
//	data section     entries: uvarint keyLen | key | flag byte
//	                 (0=value follows, 1=tombstone) | uvarint valLen | value
//	index section    uvarint count, then per entry:
//	                 uvarint keyLen | key | uvarint dataOffset
//	footer           8B LE index offset | 8B LE entry count |
//	                 4B LE CRC32C(data section) | 8 bytes magic
//
// The full (non-sparse) index keeps Get a binary search over in-memory keys
// plus one seek. The data-section checksum lets the watchdog's partition
// checker detect silent corruption without parsing entries.
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"gowatchdog/internal/memtable"
)

var magic = []byte("GWSSTB01")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when a table fails structural or checksum
// validation.
var ErrCorrupt = errors.New("sstable: corrupt table")

// ErrUnsorted is returned by the writer when entries arrive out of order.
var ErrUnsorted = errors.New("sstable: entries not in ascending key order")

const footerLen = 8 + 8 + 4 + 8

// Write creates an SSTable at path from entries, which must be in strictly
// ascending key order (as produced by memtable.Entries).
func Write(path string, entries []memtable.Entry) error {
	var data bytes.Buffer
	var index bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(buf *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}

	var prev []byte
	putUvarint(&index, uint64(len(entries)))
	for i, e := range entries {
		if i > 0 && bytes.Compare(prev, e.Key) >= 0 {
			return fmt.Errorf("%w: %q then %q", ErrUnsorted, prev, e.Key)
		}
		prev = e.Key
		off := uint64(data.Len())
		putUvarint(&data, uint64(len(e.Key)))
		data.Write(e.Key)
		if e.Tombstone {
			data.WriteByte(1)
		} else {
			data.WriteByte(0)
			putUvarint(&data, uint64(len(e.Value)))
			data.Write(e.Value)
		}
		putUvarint(&index, uint64(len(e.Key)))
		index.Write(e.Key)
		putUvarint(&index, off)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(magic); err != nil {
		return err
	}
	if _, err := f.Write(data.Bytes()); err != nil {
		return err
	}
	indexOff := int64(len(magic) + data.Len())
	if _, err := f.Write(index.Bytes()); err != nil {
		return err
	}
	footer := make([]byte, footerLen)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(len(entries)))
	binary.LittleEndian.PutUint32(footer[16:20], crc32.Checksum(data.Bytes(), castagnoli))
	copy(footer[20:], magic)
	if _, err := f.Write(footer); err != nil {
		return err
	}
	return f.Sync()
}

// indexEntry locates one key in the data section.
type indexEntry struct {
	key []byte
	off uint64
}

// Reader provides point lookups and ordered iteration over one table.
type Reader struct {
	path    string
	f       *os.File
	index   []indexEntry
	dataOff int64
	dataLen int64
	crc     uint32
	count   int
}

// Open validates the table structure and loads the index.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < int64(len(magic)+footerLen) {
		f.Close()
		return nil, fmt.Errorf("%w: file too small", ErrCorrupt)
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(f, head); err != nil || !bytes.Equal(head, magic) {
		f.Close()
		return nil, fmt.Errorf("%w: bad header magic", ErrCorrupt)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, st.Size()-footerLen); err != nil {
		f.Close()
		return nil, err
	}
	if !bytes.Equal(footer[20:], magic) {
		f.Close()
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	count := int(binary.LittleEndian.Uint64(footer[8:16]))
	crc := binary.LittleEndian.Uint32(footer[16:20])
	if indexOff < int64(len(magic)) || indexOff > st.Size()-footerLen {
		f.Close()
		return nil, fmt.Errorf("%w: index offset out of range", ErrCorrupt)
	}
	indexBytes := make([]byte, st.Size()-footerLen-indexOff)
	if _, err := f.ReadAt(indexBytes, indexOff); err != nil {
		f.Close()
		return nil, err
	}
	r := &Reader{
		path:    path,
		f:       f,
		dataOff: int64(len(magic)),
		dataLen: indexOff - int64(len(magic)),
		crc:     crc,
		count:   count,
	}
	buf := bytes.NewReader(indexBytes)
	n, err := binary.ReadUvarint(buf)
	if err != nil || int(n) != count {
		f.Close()
		return nil, fmt.Errorf("%w: index count mismatch", ErrCorrupt)
	}
	r.index = make([]indexEntry, 0, count)
	for i := 0; i < count; i++ {
		klen, err := binary.ReadUvarint(buf)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: index entry %d", ErrCorrupt, i)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(buf, key); err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: index key %d", ErrCorrupt, i)
		}
		off, err := binary.ReadUvarint(buf)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: index offset %d", ErrCorrupt, i)
		}
		r.index = append(r.index, indexEntry{key: key, off: off})
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Path returns the table's file path.
func (r *Reader) Path() string { return r.path }

// Count returns the number of entries (tombstones included).
func (r *Reader) Count() int { return r.count }

// Get returns the value for key. tombstone is true when the table records a
// deletion for the key; ok is false when the table has no entry at all.
func (r *Reader) Get(key []byte) (value []byte, tombstone, ok bool, err error) {
	i := sort.Search(len(r.index), func(i int) bool {
		return bytes.Compare(r.index[i].key, key) >= 0
	})
	if i >= len(r.index) || !bytes.Equal(r.index[i].key, key) {
		return nil, false, false, nil
	}
	e, err := r.readEntry(int64(r.index[i].off))
	if err != nil {
		return nil, false, false, err
	}
	if e.Tombstone {
		return nil, true, true, nil
	}
	return e.Value, false, true, nil
}

// readEntry decodes one entry at the given data-section offset.
func (r *Reader) readEntry(off int64) (memtable.Entry, error) {
	sec := io.NewSectionReader(r.f, r.dataOff+off, r.dataLen-off)
	br := &byteReaderAt{r: sec}
	klen, err := binary.ReadUvarint(br)
	if err != nil {
		return memtable.Entry{}, fmt.Errorf("%w: entry key length", ErrCorrupt)
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(br, key); err != nil {
		return memtable.Entry{}, fmt.Errorf("%w: entry key", ErrCorrupt)
	}
	flag, err := br.ReadByte()
	if err != nil {
		return memtable.Entry{}, fmt.Errorf("%w: entry flag", ErrCorrupt)
	}
	e := memtable.Entry{Key: key}
	if flag == 1 {
		e.Tombstone = true
		return e, nil
	}
	vlen, err := binary.ReadUvarint(br)
	if err != nil {
		return memtable.Entry{}, fmt.Errorf("%w: entry value length", ErrCorrupt)
	}
	val := make([]byte, vlen)
	if _, err := io.ReadFull(br, val); err != nil {
		return memtable.Entry{}, fmt.Errorf("%w: entry value", ErrCorrupt)
	}
	e.Value = val
	return e, nil
}

// byteReaderAt adapts a SectionReader to io.ByteReader + io.Reader.
type byteReaderAt struct {
	r   *io.SectionReader
	one [1]byte
}

func (b *byteReaderAt) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteReaderAt) Read(p []byte) (int, error) { return b.r.Read(p) }

// Iterator walks a table's entries in ascending key order from a Seek
// position; the bounded scan merge advances one entry at a time so it can
// stop as soon as the limit is reached instead of reading the whole table.
type Iterator struct {
	r   *Reader
	pos int
}

// Seek returns an iterator positioned at the first entry with key >= start
// (nil start means the table's first entry).
func (r *Reader) Seek(start []byte) *Iterator {
	pos := 0
	if start != nil {
		pos = sort.Search(len(r.index), func(i int) bool {
			return bytes.Compare(r.index[i].key, start) >= 0
		})
	}
	return &Iterator{r: r, pos: pos}
}

// Next returns the entry under the cursor and advances; ok is false when
// the table is exhausted.
func (it *Iterator) Next() (e memtable.Entry, ok bool, err error) {
	if it.pos >= len(it.r.index) {
		return memtable.Entry{}, false, nil
	}
	e, err = it.r.readEntry(int64(it.r.index[it.pos].off))
	if err != nil {
		return memtable.Entry{}, false, err
	}
	it.pos++
	return e, true, nil
}

// Iterate calls fn on every entry in key order; returning false stops.
func (r *Reader) Iterate(fn func(e memtable.Entry) bool) error {
	for _, ie := range r.index {
		e, err := r.readEntry(int64(ie.off))
		if err != nil {
			return err
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// VerifyChecksum re-reads the data section and validates it against the
// footer CRC — the fsck-style partition check the watchdog runs (§2).
func (r *Reader) VerifyChecksum() error {
	data := make([]byte, r.dataLen)
	if _, err := r.f.ReadAt(data, r.dataOff); err != nil {
		return err
	}
	if crc32.Checksum(data, castagnoli) != r.crc {
		return fmt.Errorf("%w: data checksum mismatch in %s", ErrCorrupt, r.path)
	}
	return nil
}

// Merge k-way-merges the given tables (newest first: tables[0] shadows
// tables[1], etc.) into a new table at outPath. When dropTombstones is true
// (a full compaction), deletions are discarded instead of propagated.
func Merge(outPath string, newestFirst []*Reader, dropTombstones bool) error {
	type cursor struct {
		entries []memtable.Entry
		pos     int
		prio    int // lower = newer
	}
	cursors := make([]*cursor, 0, len(newestFirst))
	for prio, r := range newestFirst {
		var es []memtable.Entry
		if err := r.Iterate(func(e memtable.Entry) bool {
			es = append(es, e)
			return true
		}); err != nil {
			return err
		}
		cursors = append(cursors, &cursor{entries: es, prio: prio})
	}
	var out []memtable.Entry
	for {
		// Find the smallest key among cursors; among ties the newest wins.
		var best *cursor
		for _, c := range cursors {
			if c.pos >= len(c.entries) {
				continue
			}
			if best == nil {
				best = c
				continue
			}
			cmp := bytes.Compare(c.entries[c.pos].Key, best.entries[best.pos].Key)
			if cmp < 0 || (cmp == 0 && c.prio < best.prio) {
				best = c
			}
		}
		if best == nil {
			break
		}
		e := best.entries[best.pos]
		// Advance every cursor past this key (shadowed duplicates).
		for _, c := range cursors {
			for c.pos < len(c.entries) && bytes.Equal(c.entries[c.pos].Key, e.Key) {
				c.pos++
			}
		}
		if e.Tombstone && dropTombstones {
			continue
		}
		out = append(out, e)
	}
	return Write(outPath, out)
}
