package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"gowatchdog/internal/memtable"
)

func entry(k, v string) memtable.Entry {
	return memtable.Entry{Key: []byte(k), Value: []byte(v)}
}

func tombstone(k string) memtable.Entry {
	return memtable.Entry{Key: []byte(k), Tombstone: true}
}

func writeTable(t *testing.T, name string, entries []memtable.Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := Write(path, entries); err != nil {
		t.Fatal(err)
	}
	return path
}

func openTable(t *testing.T, path string) *Reader {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestWriteOpenGet(t *testing.T) {
	path := writeTable(t, "t.sst", []memtable.Entry{
		entry("apple", "red"), entry("banana", "yellow"), tombstone("cherry"),
	})
	r := openTable(t, path)
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	v, tomb, ok, err := r.Get([]byte("banana"))
	if err != nil || !ok || tomb || string(v) != "yellow" {
		t.Fatalf("Get(banana) = %q %v %v %v", v, tomb, ok, err)
	}
	_, tomb, ok, err = r.Get([]byte("cherry"))
	if err != nil || !ok || !tomb {
		t.Fatalf("Get(cherry) = tomb %v ok %v err %v", tomb, ok, err)
	}
	_, _, ok, err = r.Get([]byte("durian"))
	if err != nil || ok {
		t.Fatalf("Get(durian) ok=%v err=%v", ok, err)
	}
}

func TestEmptyTable(t *testing.T) {
	path := writeTable(t, "empty.sst", nil)
	r := openTable(t, path)
	if r.Count() != 0 {
		t.Fatalf("Count = %d", r.Count())
	}
	if err := r.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	_, _, ok, _ := r.Get([]byte("k"))
	if ok {
		t.Fatal("Get on empty table found a key")
	}
}

func TestWriteRejectsUnsorted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.sst")
	err := Write(path, []memtable.Entry{entry("b", "1"), entry("a", "2")})
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("err = %v", err)
	}
	err = Write(path, []memtable.Entry{entry("a", "1"), entry("a", "2")})
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("duplicate keys: err = %v", err)
	}
}

func TestIterateOrderAndEarlyStop(t *testing.T) {
	path := writeTable(t, "it.sst", []memtable.Entry{
		entry("a", "1"), entry("b", "2"), entry("c", "3"),
	})
	r := openTable(t, path)
	var keys []string
	if err := r.Iterate(func(e memtable.Entry) bool {
		keys = append(keys, string(e.Key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	n := 0
	r.Iterate(func(memtable.Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestVerifyChecksumDetectsCorruption(t *testing.T) {
	path := writeTable(t, "c.sst", []memtable.Entry{entry("key", "precious")})
	r := openTable(t, path)
	if err := r.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the data section (after the 8-byte magic).
	data, _ := os.ReadFile(path)
	data[10] ^= 0x01
	os.WriteFile(path, data, 0o644)
	r2 := openTable(t, path) // index/footer still parse
	if err := r2.VerifyChecksum(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyChecksum = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	tiny := filepath.Join(dir, "tiny")
	os.WriteFile(tiny, []byte("x"), 0o644)
	if _, err := Open(tiny); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tiny: %v", err)
	}
	junk := filepath.Join(dir, "junk")
	os.WriteFile(junk, bytes.Repeat([]byte("J"), 100), 0o644)
	if _, err := Open(junk); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("junk: %v", err)
	}
}

func TestMergeNewestWins(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.sst")
	newPath := filepath.Join(dir, "new.sst")
	if err := Write(oldPath, []memtable.Entry{
		entry("a", "old-a"), entry("b", "old-b"), entry("c", "old-c"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := Write(newPath, []memtable.Entry{
		entry("b", "new-b"), tombstone("c"), entry("d", "new-d"),
	}); err != nil {
		t.Fatal(err)
	}
	oldR := openTable(t, oldPath)
	newR := openTable(t, newPath)
	merged := filepath.Join(dir, "merged.sst")
	if err := Merge(merged, []*Reader{newR, oldR}, false); err != nil {
		t.Fatal(err)
	}
	m := openTable(t, merged)
	want := map[string]struct {
		val  string
		tomb bool
	}{
		"a": {"old-a", false}, "b": {"new-b", false}, "c": {"", true}, "d": {"new-d", false},
	}
	if m.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", m.Count(), len(want))
	}
	for k, w := range want {
		v, tomb, ok, err := m.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("Get(%s) err=%v ok=%v", k, err, ok)
		}
		if tomb != w.tomb || (!tomb && string(v) != w.val) {
			t.Fatalf("Get(%s) = %q tomb=%v, want %q tomb=%v", k, v, tomb, w.val, w.tomb)
		}
	}
}

func TestMergeDropTombstones(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "1.sst")
	Write(p1, []memtable.Entry{entry("a", "1"), tombstone("b")})
	r1 := openTable(t, p1)
	merged := filepath.Join(dir, "m.sst")
	if err := Merge(merged, []*Reader{r1}, true); err != nil {
		t.Fatal(err)
	}
	m := openTable(t, merged)
	if m.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (tombstone dropped)", m.Count())
	}
	if _, _, ok, _ := m.Get([]byte("b")); ok {
		t.Fatal("dropped tombstone still present")
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte("V"), 1<<18)
	path := writeTable(t, "big.sst", []memtable.Entry{
		{Key: []byte("big"), Value: big},
	})
	r := openTable(t, path)
	v, _, ok, err := r.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("big value: ok=%v err=%v len=%d", ok, err, len(v))
	}
	if err := r.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge agrees with a reference model (newest table wins per key;
// tombstones delete when dropped).
func TestMergeModelProperty(t *testing.T) {
	dir := t.TempDir()
	seq := 0
	f := func(gens [][]uint8, dropTombstones bool) bool {
		seq++
		if len(gens) == 0 {
			return true
		}
		if len(gens) > 4 {
			gens = gens[:4]
		}
		// Build one table per generation (gens[0] oldest) and the model.
		model := map[string]*memtable.Entry{}
		var readers []*Reader
		for g, keys := range gens {
			byKey := map[string]memtable.Entry{}
			for i, k := range keys {
				name := fmt.Sprintf("k%03d", k%32)
				e := memtable.Entry{Key: []byte(name)}
				if (int(k)+i+g)%4 == 0 {
					e.Tombstone = true
				} else {
					e.Value = []byte(fmt.Sprintf("g%d-%d", g, k))
				}
				byKey[name] = e
			}
			var names []string
			for n := range byKey {
				names = append(names, n)
			}
			sort.Strings(names)
			var entries []memtable.Entry
			for _, n := range names {
				e := byKey[n]
				entries = append(entries, e)
				ec := e
				model[n] = &ec // later (newer) generations overwrite
			}
			path := filepath.Join(dir, fmt.Sprintf("m%d-%d.sst", seq, g))
			if Write(path, entries) != nil {
				return false
			}
			r, err := Open(path)
			if err != nil {
				return false
			}
			defer r.Close()
			// Merge takes newest first.
			readers = append([]*Reader{r}, readers...)
		}
		out := filepath.Join(dir, fmt.Sprintf("m%d-out.sst", seq))
		if Merge(out, readers, dropTombstones) != nil {
			return false
		}
		m, err := Open(out)
		if err != nil {
			return false
		}
		defer m.Close()
		// Check the model against the merged table.
		want := 0
		for name, e := range model {
			v, tomb, ok, err := m.Get([]byte(name))
			if err != nil {
				return false
			}
			if e.Tombstone {
				if dropTombstones {
					if ok {
						return false
					}
				} else {
					if !ok || !tomb {
						return false
					}
					want++
				}
				continue
			}
			if !ok || tomb || string(v) != string(e.Value) {
				return false
			}
			want++
		}
		return m.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: writing a sorted random key set and reading every key back
// returns exactly the written values; iteration preserves order.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(m map[string]string) bool {
		i++
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		entries := make([]memtable.Entry, 0, len(keys))
		for _, k := range keys {
			entries = append(entries, entry(k, m[k]))
		}
		path := filepath.Join(dir, fmt.Sprintf("p%d.sst", i))
		if err := Write(path, entries); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		if r.Count() != len(keys) {
			return false
		}
		for _, k := range keys {
			v, tomb, ok, err := r.Get([]byte(k))
			if err != nil || !ok || tomb || string(v) != m[k] {
				return false
			}
		}
		return r.VerifyChecksum() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
