package sstable

import (
	"fmt"
	"path/filepath"
	"testing"

	"gowatchdog/internal/memtable"
)

func benchEntries(n int) []memtable.Entry {
	out := make([]memtable.Entry, n)
	for i := range out {
		out[i] = memtable.Entry{
			Key:   []byte(fmt.Sprintf("key/%06d", i)),
			Value: []byte(fmt.Sprintf("value-%06d-0123456789abcdef", i)),
		}
	}
	return out
}

func BenchmarkWrite1K(b *testing.B) {
	entries := benchEntries(1000)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(filepath.Join(dir, fmt.Sprintf("b%d.sst", i)), entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "g.sst")
	entries := benchEntries(4096)
	if err := Write(path, entries); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, ok, err := r.Get(entries[i%len(entries)].Key)
		if err != nil || !ok {
			b.Fatalf("miss: %v", err)
		}
	}
}

func BenchmarkIterate(b *testing.B) {
	path := filepath.Join(b.TempDir(), "it.sst")
	if err := Write(path, benchEntries(1000)); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r.Iterate(func(memtable.Entry) bool { n++; return true })
		if n != 1000 {
			b.Fatalf("n = %d", n)
		}
	}
}

func BenchmarkVerifyChecksum(b *testing.B) {
	path := filepath.Join(b.TempDir(), "v.sst")
	if err := Write(path, benchEntries(4096)); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.VerifyChecksum(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge4Way(b *testing.B) {
	dir := b.TempDir()
	var readers []*Reader
	for t := 0; t < 4; t++ {
		path := filepath.Join(dir, fmt.Sprintf("in%d.sst", t))
		entries := make([]memtable.Entry, 250)
		for i := range entries {
			entries[i] = memtable.Entry{
				Key:   []byte(fmt.Sprintf("key/%d/%06d", t, i)),
				Value: []byte("merge-value"),
			}
		}
		if err := Write(path, entries); err != nil {
			b.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		readers = append(readers, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Merge(filepath.Join(dir, fmt.Sprintf("out%d.sst", i)), readers, true); err != nil {
			b.Fatal(err)
		}
	}
}
