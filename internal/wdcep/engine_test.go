package wdcep

import (
	"sync"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func report(checker string, s watchdog.Status, d time.Duration) Event {
	return Event{Kind: EventReport, Checker: checker, Status: s, Time: at(d)}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// feed publishes the events and evaluates after each one, like Replay but on
// an existing engine.
func feed(eng *Engine, events ...Event) {
	for _, ev := range events {
		eng.Publish(ev)
		eng.Evaluate(ev.Time)
	}
}

func TestConsecutiveRule(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		Consecutive("streak", 3).OnChecker("kvs."),
	}})
	feed(eng,
		report("kvs.wal", watchdog.StatusError, 0),
		report("kvs.wal", watchdog.StatusError, time.Second),
		report("dfs.rep", watchdog.StatusError, time.Second), // other subject: no effect
	)
	if got := eng.Fired(); got != 0 {
		t.Fatalf("fired %d before threshold", got)
	}
	feed(eng, report("kvs.wal", watchdog.StatusError, 2*time.Second))
	firings := eng.Firings()
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1", len(firings))
	}
	f := firings[0]
	if f.Rule != "streak" || f.Count != 3 {
		t.Errorf("firing = %+v, want rule streak count 3", f)
	}
	if !f.First.Equal(at(0)) {
		t.Errorf("First = %v, want the streak's earliest event %v", f.First, at(0))
	}
	if len(f.Checkers) != 1 || f.Checkers[0] != "kvs.wal" {
		t.Errorf("Checkers = %v, want [kvs.wal]", f.Checkers)
	}
	if f.Status != watchdog.StatusError {
		t.Errorf("Status = %v, want default severity error", f.Status)
	}

	// A continuing streak does not refire; a healthy reset re-arms it.
	feed(eng, report("kvs.wal", watchdog.StatusError, 3*time.Second))
	if got := eng.Fired(); got != 1 {
		t.Fatalf("continuing streak refired: %d", got)
	}
	feed(eng,
		report("kvs.wal", watchdog.StatusHealthy, 4*time.Second),
		report("kvs.wal", watchdog.StatusError, 5*time.Second),
		report("kvs.wal", watchdog.StatusError, 6*time.Second),
		report("kvs.wal", watchdog.StatusError, 7*time.Second),
	)
	if got := eng.Fired(); got != 2 {
		t.Fatalf("fired %d after healthy reset + new streak, want 2", got)
	}
}

func TestConsecutiveGaugeGate(t *testing.T) {
	backlog := 10.0
	eng := mustEngine(t, Config{
		Rules: []Rule{
			Consecutive("streak-growth", 2).WithGaugeGrowth("backlog", 5),
		},
		GaugeSource: func(name string) (float64, bool) {
			if name != "backlog" {
				return 0, false
			}
			return backlog, true
		},
	})
	feed(eng,
		report("kvs.wal", watchdog.StatusError, 0),
		report("kvs.wal", watchdog.StatusError, time.Second),
	)
	if got := eng.Fired(); got != 0 {
		t.Fatalf("fired %d with a flat gauge", got)
	}
	backlog = 16 // grown by 6 ≥ delta 5 since the streak started
	eng.Evaluate(at(2 * time.Second))
	if got := eng.Fired(); got != 1 {
		t.Fatalf("fired %d after gauge growth, want 1", got)
	}
}

func TestConsecutiveGaugeMissingNeverFires(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		Consecutive("streak-growth", 2).WithGaugeGrowth("nope", 1),
	}})
	feed(eng,
		report("x", watchdog.StatusError, 0),
		report("x", watchdog.StatusError, time.Second),
	)
	if got := eng.Fired(); got != 0 {
		t.Fatalf("fired %d with no gauge source; growth cannot be confirmed", got)
	}
}

func TestCountRuleWindow(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		CountRule("burst", 3, 10*time.Second),
	}})
	feed(eng,
		report("a", watchdog.StatusError, 0),
		report("b", watchdog.StatusStuck, 4*time.Second),
	)
	// The first hit slides out of the window before the third arrives.
	feed(eng, report("c", watchdog.StatusError, 11*time.Second))
	if got := eng.Fired(); got != 0 {
		t.Fatalf("fired %d with hits outside the window", got)
	}
	feed(eng, report("d", watchdog.StatusError, 12*time.Second))
	firings := eng.Firings()
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1", len(firings))
	}
	if f := firings[0]; f.Count != 3 || !f.First.Equal(at(4*time.Second)) {
		t.Errorf("firing = %+v, want count 3 first at %v", f, at(4*time.Second))
	}
}

func TestDistinctRule(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		Distinct("spread", 3, time.Minute),
	}})
	feed(eng,
		report("a", watchdog.StatusError, 0),
		report("a", watchdog.StatusError, time.Second),
		report("b", watchdog.StatusError, 2*time.Second),
		report("b", watchdog.StatusError, 3*time.Second),
	)
	if got := eng.Fired(); got != 0 {
		t.Fatalf("fired %d with only 2 distinct subjects", got)
	}
	feed(eng, report("c", watchdog.StatusError, 4*time.Second))
	firings := eng.Firings()
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1", len(firings))
	}
	f := firings[0]
	if f.Count != 3 {
		t.Errorf("Count = %d, want 3 distinct subjects", f.Count)
	}
	want := []string{"a", "b", "c"}
	if len(f.Checkers) != len(want) {
		t.Fatalf("Checkers = %v, want %v", f.Checkers, want)
	}
	for i := range want {
		if f.Checkers[i] != want[i] {
			t.Fatalf("Checkers = %v, want sorted %v", f.Checkers, want)
		}
	}
}

func TestFlapRule(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		Flap("verdict-flap", 2, time.Minute).OnKinds(EventMesh).
			WithHealthyFor(20 * time.Second).WithCooldown(time.Second),
	}})
	mesh := func(s watchdog.Status, d time.Duration) Event {
		return Event{Kind: EventMesh, Checker: "wdmesh.node-2", Status: s, Time: at(d)}
	}
	// Raise, clear, raise again quickly: two raises with only a short
	// healthy gap → flap.
	feed(eng,
		mesh(watchdog.StatusStuck, 0),
		mesh(watchdog.StatusStuck, time.Second), // still abnormal: not a new raise
		mesh(watchdog.StatusHealthy, 2*time.Second),
		mesh(watchdog.StatusSlow, 5*time.Second),
	)
	firings := eng.Firings()
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1", len(firings))
	}
	if f := firings[0]; f.Count != 2 || f.Checkers[0] != "wdmesh.node-2" {
		t.Errorf("firing = %+v, want 2 raises on wdmesh.node-2", f)
	}

	// A sustained-healthy gap (≥ HealthyFor) forgets earlier raises.
	feed(eng,
		mesh(watchdog.StatusHealthy, 10*time.Second),
		mesh(watchdog.StatusStuck, 40*time.Second), // 30s healthy ≥ 20s: reset, raise #1
		mesh(watchdog.StatusHealthy, 41*time.Second),
	)
	if got := eng.Fired(); got != 1 {
		t.Fatalf("fired %d after sustained-healthy reset, want still 1", got)
	}
	feed(eng, mesh(watchdog.StatusStuck, 45*time.Second)) // short gap: raise #2 → flap
	if got := eng.Fired(); got != 2 {
		t.Fatalf("fired %d, want 2 after a second quick flap", got)
	}
}

func TestCountRuleCooldown(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		CountRule("burst", 2, 10*time.Second).WithCooldown(30 * time.Second),
	}})
	feed(eng,
		report("a", watchdog.StatusError, 0),
		report("b", watchdog.StatusError, time.Second),
	)
	if got := eng.Fired(); got != 1 {
		t.Fatalf("fired %d, want 1", got)
	}
	// New hits inside the cooldown are absorbed silently.
	feed(eng,
		report("c", watchdog.StatusError, 2*time.Second),
		report("d", watchdog.StatusError, 3*time.Second),
	)
	if got := eng.Fired(); got != 1 {
		t.Fatalf("fired %d inside cooldown, want 1", got)
	}
	feed(eng,
		report("e", watchdog.StatusError, 32*time.Second),
		report("f", watchdog.StatusError, 33*time.Second),
	)
	if got := eng.Fired(); got != 2 {
		t.Fatalf("fired %d after cooldown, want 2", got)
	}
}

func TestCountRuleHealthyForReset(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		CountRule("escalate-twice", 2, 10*time.Minute).
			OnKinds(EventRecovery).OnOutcomes("escalated").
			WithHealthyFor(30 * time.Second),
	}})
	rec := func(outcome string, s watchdog.Status, d time.Duration) Event {
		return Event{Kind: EventRecovery, Checker: "kvs.wal", Status: s, Outcome: outcome, Time: at(d)}
	}
	// One escalation, then a sustained-healthy stretch (recovered event),
	// then another escalation much later: no firing.
	feed(eng,
		rec("escalated", watchdog.StatusError, 0),
		rec("recovered", watchdog.StatusHealthy, 10*time.Second),
		rec("escalated", watchdog.StatusError, 50*time.Second), // 40s healthy ≥ 30s: window cleared
	)
	if got := eng.Fired(); got != 0 {
		t.Fatalf("fired %d across a sustained-healthy gap", got)
	}
	feed(eng, rec("escalated", watchdog.StatusError, 55*time.Second))
	if got := eng.Fired(); got != 1 {
		t.Fatalf("fired %d on back-to-back escalations, want 1", got)
	}
}

func TestDefaultKindsIgnoreMeshRecoveryCEP(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		CountRule("burst", 2, time.Minute),
	}})
	feed(eng,
		Event{Kind: EventMesh, Checker: "wdmesh.n", Status: watchdog.StatusStuck, Time: at(0)},
		Event{Kind: EventRecovery, Checker: "c", Status: watchdog.StatusError, Outcome: "failed", Time: at(time.Second)},
		Event{Kind: EventCEP, Checker: "wdcep.r", Status: watchdog.StatusError, Rule: "r", Time: at(2 * time.Second)},
	)
	if got := eng.Fired(); got != 0 {
		t.Fatalf("default-kind rule fired %d on mesh/recovery/cep events", got)
	}
}

func TestStatusFilterSkipped(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		Distinct("breaker-spread", 2, time.Minute).OnStatuses("skipped"),
	}})
	feed(eng,
		report("a", watchdog.StatusError, 0), // not a listed status
		report("a", watchdog.StatusSkipped, time.Second),
		report("b", watchdog.StatusSkipped, 2*time.Second),
	)
	firings := eng.Firings()
	if len(firings) != 1 || firings[0].Count != 2 {
		t.Fatalf("firings = %+v, want one with 2 skipped subjects", firings)
	}
}

func TestPumpEvalEveryGate(t *testing.T) {
	eng := mustEngine(t, Config{
		Rules:     []Rule{CountRule("burst", 1, time.Minute)},
		EvalEvery: time.Second,
	})
	eng.Publish(report("a", watchdog.StatusError, 0))
	eng.Pump(at(0)) // first pump always evaluates
	if got := eng.Snapshot().Evaluations; got != 1 {
		t.Fatalf("evaluations = %d, want 1", got)
	}
	eng.Pump(at(100 * time.Millisecond)) // inside the gate: skipped
	if got := eng.Snapshot().Evaluations; got != 1 {
		t.Fatalf("evaluations = %d after gated pump, want 1", got)
	}
	eng.Pump(at(1100 * time.Millisecond))
	if got := eng.Snapshot().Evaluations; got != 2 {
		t.Fatalf("evaluations = %d after due pump, want 2", got)
	}
}

func TestEngineConcurrentPublish(t *testing.T) {
	eng := mustEngine(t, Config{
		Rules:    []Rule{CountRule("burst", 4096, time.Millisecond)},
		RingSize: 256,
	})
	const publishers, perPub = 8, 2000
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				eng.Publish(report("c", watchdog.StatusError, time.Duration(i)*time.Microsecond))
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
			eng.Pump(at(time.Second))
		}
	}
	eng.Drain(at(2 * time.Second))
	snap := eng.Snapshot()
	if snap.Published+snap.Dropped != publishers*perPub {
		t.Fatalf("published %d + dropped %d != %d", snap.Published, snap.Dropped, publishers*perPub)
	}
	if snap.Ingested != snap.Published {
		t.Fatalf("ingested %d != published %d after Drain", snap.Ingested, snap.Published)
	}
}

func TestSnapshotCounters(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		CountRule("burst", 2, time.Minute),
		Consecutive("streak", 2),
	}})
	feed(eng,
		report("a", watchdog.StatusError, 0),
		report("a", watchdog.StatusError, time.Second),
	)
	snap := eng.Snapshot()
	if snap.Rules != 2 || snap.Published != 2 || snap.Ingested != 2 {
		t.Errorf("snapshot = %+v, want 2 rules / 2 published / 2 ingested", snap)
	}
	if snap.Fired != 2 {
		t.Errorf("fired = %d, want 2 (both rules crossed)", snap.Fired)
	}
	if len(snap.RuleStats) != 2 || snap.RuleStats[0].Fired != 1 || snap.RuleStats[1].Fired != 1 {
		t.Errorf("rule stats = %+v, want one firing each", snap.RuleStats)
	}
	if snap.RingCap != DefaultRingSize {
		t.Errorf("ring cap = %d, want default %d", snap.RingCap, DefaultRingSize)
	}
}

func TestReplay(t *testing.T) {
	rules := []Rule{Consecutive("streak", 2).OnChecker("kvs.")}
	firings, err := Replay(rules, []Event{
		report("kvs.wal", watchdog.StatusError, 0),
		report("kvs.wal", watchdog.StatusError, time.Second),
		report("kvs.wal", watchdog.StatusHealthy, 2*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(firings) != 1 {
		t.Fatalf("firings = %d, want 1", len(firings))
	}
	// Earliest-possible semantics: the replay evaluates after every event,
	// so the firing lands at the second event's time, not at the end.
	if !firings[0].Time.Equal(at(time.Second)) {
		t.Errorf("fired at %v, want %v", firings[0].Time, at(time.Second))
	}
}

func TestOnFireHook(t *testing.T) {
	var fired []Firing
	eng, err := NewEngine(Config{
		Rules:  []Rule{CountRule("burst", 1, time.Minute)},
		OnFire: func(f Firing) { fired = append(fired, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, report("a", watchdog.StatusError, 0))
	if len(fired) != 1 || fired[0].Rule != "burst" {
		t.Fatalf("OnFire saw %+v, want one burst firing", fired)
	}
}

func TestFiringLogBounded(t *testing.T) {
	eng := mustEngine(t, Config{
		Rules:      []Rule{CountRule("burst", 1, time.Minute).WithCooldown(time.Nanosecond)},
		MaxFirings: 4,
	})
	for i := 0; i < 10; i++ {
		feed(eng, report("a", watchdog.StatusError, time.Duration(i)*time.Second))
	}
	if got := len(eng.Firings()); got != 4 {
		t.Fatalf("retained %d firings, want 4", got)
	}
	snap := eng.Snapshot()
	if snap.Fired != 10 || snap.FiringsDropped != 6 {
		t.Fatalf("fired %d dropped %d, want 10/6", snap.Fired, snap.FiringsDropped)
	}
}

func TestNewEngineValidation(t *testing.T) {
	cases := []struct {
		name  string
		rules []Rule
	}{
		{"no rules", nil},
		{"empty name", []Rule{CountRule("", 2, time.Minute)}},
		{"duplicate names", []Rule{CountRule("x", 2, time.Minute), Consecutive("x", 2)}},
		{"bad kind", []Rule{{Name: "x", Kind: "sliding", Count: 2}}},
		{"count without window", []Rule{{Name: "x", Kind: KindCount, Count: 2}}},
		{"consecutive of one", []Rule{Consecutive("x", 1)}},
		{"oversized count", []Rule{CountRule("x", maxWindowedCount+1, time.Minute)}},
		{"bad status", []Rule{CountRule("x", 2, time.Minute).OnStatuses("wedged")}},
		{"healthy trigger", []Rule{CountRule("x", 2, time.Minute).OnStatuses("healthy")}},
		{"bad severity", []Rule{CountRule("x", 2, time.Minute).WithSeverity("fine")}},
		{"benign severity", []Rule{CountRule("x", 2, time.Minute).WithSeverity("healthy")}},
		{"bad event kind", []Rule{CountRule("x", 2, time.Minute).OnKinds("journal")}},
		{"gauge on count rule", []Rule{CountRule("x", 2, time.Minute).WithGaugeGrowth("g", 1)}},
	}
	for _, tc := range cases {
		if _, err := NewEngine(Config{Rules: tc.rules}); err == nil {
			t.Errorf("%s: NewEngine accepted invalid rules", tc.name)
		}
	}
}
