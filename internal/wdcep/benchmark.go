package wdcep

import (
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
)

// IngestBenchmark returns the canonical steady-state ingest benchmark body:
// publish one event per iteration against a representative rule set and pump
// an evaluation pass once per half-ring so the ring never overflows. It is
// shared by BenchmarkEngineIngest (go test -bench) and cmd/wdbench's
// BENCH_wdcep.json emitter, so the committed perf verdict and the in-tree
// benchmark measure the same path.
//
// The workload alternates a healthy report in between short abnormal bursts,
// exercising the trigger, reset, and streak paths without ever crossing a
// rule threshold — a firing allocates (it is rare by design) and would
// pollute the steady-state allocation measurement.
func IngestBenchmark() func(b *testing.B) {
	return func(b *testing.B) {
		// Thresholds sit far above what the workload accumulates inside the
		// (short) windows, so the hot trigger/reset/streak paths all run but
		// nothing ever fires or overflows.
		rules := []Rule{
			Consecutive("bench-streak", 1_000_000).OnChecker("bench."),
			CountRule("bench-count", 4096, time.Millisecond),
			Distinct("bench-distinct", 4096, time.Millisecond).OnKinds(EventAlarm),
			Flap("bench-flap", 4096, time.Millisecond).OnChecker("bench.").WithHealthyFor(time.Minute),
		}
		eng, err := NewEngine(Config{Rules: rules})
		if err != nil {
			b.Fatal(err)
		}
		base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		pumpEvery := eng.ring.cap() / 2
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := Event{
				Kind:    EventReport,
				Checker: "bench.checker",
				Status:  watchdog.StatusError,
				Time:    base.Add(time.Duration(i) * time.Microsecond),
			}
			if i%8 == 7 {
				ev.Status = watchdog.StatusHealthy
			}
			eng.Publish(ev)
			if i%pumpEvery == pumpEvery-1 {
				eng.Evaluate(ev.Time)
			}
		}
		b.StopTimer()
		eng.Drain(base.Add(time.Duration(b.N) * time.Microsecond))
		if got := eng.Fired(); got != 0 {
			b.Fatalf("steady-state benchmark fired %d rules; thresholds are miscalibrated", got)
		}
		if dropped := eng.RingDropped(); dropped != 0 {
			b.Fatalf("benchmark dropped %d events; pump cadence is miscalibrated", dropped)
		}
	}
}
