package wdcep

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingOverflowAccounting hammers a small ring from concurrent publishers
// with no consumer: exactly cap events must be accepted, every other publish
// must be dropped and counted, and a drain must recover exactly the accepted
// events.
func TestRingOverflowAccounting(t *testing.T) {
	const (
		publishers = 8
		perPub     = 1000
		size       = 64
	)
	r := newRing(size)
	if r.cap() != size {
		t.Fatalf("cap = %d, want %d", r.cap(), size)
	}
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if r.publish(Event{Kind: EventReport, Checker: "c", Time: time.Unix(int64(i), 0)}) {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	total := int64(publishers * perPub)
	if got := accepted.Load(); got != size {
		t.Errorf("accepted = %d, want exactly ring cap %d", got, size)
	}
	if got := r.dropped(); got != total-accepted.Load() {
		t.Errorf("dropped = %d, want %d (total %d - accepted %d)", got, total-accepted.Load(), total, accepted.Load())
	}
	out := r.drain(make([]Event, 0, size*2))
	if len(out) != int(accepted.Load()) {
		t.Errorf("drained %d events, want %d", len(out), accepted.Load())
	}

	// After a drain the ring accepts again, and the drop counter only moves
	// on genuine overflow.
	before := r.dropped()
	for i := 0; i < size; i++ {
		if !r.publish(Event{Kind: EventAlarm}) {
			t.Fatalf("publish %d rejected on a drained ring", i)
		}
	}
	if r.publish(Event{}) {
		t.Fatalf("publish on a re-filled ring should drop")
	}
	if got := r.dropped(); got != before+1 {
		t.Errorf("dropped = %d after one overflow, want %d", got, before+1)
	}
}

// TestRingConcurrentPublishDrain interleaves publishers with a single
// consumer and checks conservation: accepted == drained + still-buffered,
// and accepted + dropped == published.
func TestRingConcurrentPublishDrain(t *testing.T) {
	const (
		publishers = 4
		perPub     = 5000
	)
	r := newRing(128)
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if r.publish(Event{Kind: EventReport}) {
					accepted.Add(1)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var drained int64
	batch := make([]Event, 0, 128)
	for {
		batch = r.drain(batch[:0])
		drained += int64(len(batch))
		select {
		case <-done:
			if len(batch) == 0 {
				// One final sweep after the last publisher exited.
				batch = r.drain(batch[:0])
				drained += int64(len(batch))
				if acc := accepted.Load(); drained != acc {
					t.Fatalf("drained %d, accepted %d", drained, acc)
				}
				if acc, drop := accepted.Load(), r.dropped(); acc+drop != publishers*perPub {
					t.Fatalf("accepted %d + dropped %d != published %d", acc, drop, publishers*perPub)
				}
				return
			}
		default:
		}
	}
}
