package wdcep

import "testing"

// BenchmarkEngineIngest measures the steady-state publish+evaluate path the
// journal tap rides on. The same body backs cmd/wdbench's BENCH_wdcep.json
// verdict; the acceptance bar there is ≥ 1M events/sec and ~0 allocs/op.
func BenchmarkEngineIngest(b *testing.B) {
	IngestBenchmark()(b)
}
