package wdcep

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"gowatchdog/internal/watchdog"
)

// RuleKind selects a rule's temporal operator.
type RuleKind string

const (
	// KindConsecutive fires when one subject produces Count consecutive
	// trigger events with no healthy event in between — "checker X abnormal
	// for ≥N straight intervals", optionally gated on gauge growth.
	KindConsecutive RuleKind = "consecutive"
	// KindCount fires when ≥Count trigger events land inside Window,
	// regardless of subject.
	KindCount RuleKind = "count"
	// KindDistinct fires when trigger events from ≥Count distinct subjects
	// land inside Window — "K different checkers failing together".
	KindDistinct RuleKind = "distinct"
	// KindFlap fires when one subject transitions healthy→abnormal ≥Count
	// times inside Window without an intervening sustained-healthy gap of
	// HealthyFor — a verdict or checker that raises, clears, and raises
	// again.
	KindFlap RuleKind = "flap"
)

// Duration is a time.Duration that marshals as a parseable string ("30s") in
// rule files, and also accepts raw nanosecond integers when decoding.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON parses either a duration string or integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("wdcep: bad duration %q: %w", s, err)
		}
		*d = Duration(td)
		return nil
	}
	ns, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		return fmt.Errorf("wdcep: bad duration %s", data)
	}
	*d = Duration(ns)
	return nil
}

// Match selects which events a rule sees. All set fields must match; an
// entirely zero Match means "every report or alarm event".
type Match struct {
	// Kinds restricts the event kinds. Empty means report and alarm — the
	// intrinsic detection stream; mesh, recovery, and cep events must be
	// asked for explicitly so rule cascades stay opt-in.
	Kinds []string `json:"kinds,omitempty"`
	// CheckerPrefix restricts subjects by name prefix ("kvs.", "wdmesh.").
	CheckerPrefix string `json:"checker_prefix,omitempty"`
	// Statuses restricts which statuses count as trigger events, by status
	// name. Empty means any abnormal status (error, stuck, crashed, slow).
	// Listing "skipped" lets a rule watch breaker/budget skips, which are
	// not abnormal.
	Statuses []string `json:"statuses,omitempty"`
	// Outcomes restricts recovery events by outcome name ("escalated",
	// "failed", ...). Only meaningful with Kinds containing "recovery".
	Outcomes []string `json:"outcomes,omitempty"`
}

// Rule is one declarative temporal rule. Build rules with the constructor +
// chaining API (Consecutive, CountRule, ... then On*/With*) or decode them
// from a JSON rule file (LoadRules). Rules are pure data; the engine compiles
// them at construction.
type Rule struct {
	// Name identifies the rule in firings, journal entries, and metrics.
	Name string `json:"name"`
	// Kind selects the temporal operator.
	Kind RuleKind `json:"kind"`
	// Match selects the events the rule sees.
	Match Match `json:"match,omitempty"`
	// Count is the operator threshold: streak length (consecutive), events
	// in window (count), distinct subjects (distinct), raises (flap).
	Count int `json:"count"`
	// Window bounds the correlation window for count/distinct/flap rules.
	Window Duration `json:"window,omitempty"`
	// HealthyFor is the sustained-healthy gap that resets accumulated state:
	// a subject healthy for at least this long clears the rule's memory of
	// it. Zero means only Window pruning (and, for consecutive rules, any
	// healthy event) forgets.
	HealthyFor Duration `json:"healthy_for,omitempty"`
	// Cooldown suppresses re-fires after a firing (default: Window, or the
	// engine's evaluation period for consecutive rules).
	Cooldown Duration `json:"cooldown,omitempty"`
	// Gauge, when set on a consecutive rule, additionally requires the named
	// gauge to have grown by at least GaugeDelta between the streak's first
	// event and evaluation time — "abnormal while backlog grows".
	Gauge      string  `json:"gauge,omitempty"`
	GaugeDelta float64 `json:"gauge_delta,omitempty"`
	// Severity is the status name the synthesized alarm carries (default
	// "error").
	Severity string `json:"severity,omitempty"`
}

// Consecutive returns a consecutive-streak rule: a single subject abnormal on
// n straight matching events.
func Consecutive(name string, n int) Rule {
	return Rule{Name: name, Kind: KindConsecutive, Count: n}
}

// CountRule returns a windowed count rule: n trigger events inside window.
func CountRule(name string, n int, window time.Duration) Rule {
	return Rule{Name: name, Kind: KindCount, Count: n, Window: Duration(window)}
}

// Distinct returns a distinct-subject rule: trigger events from n different
// subjects inside window.
func Distinct(name string, n int, window time.Duration) Rule {
	return Rule{Name: name, Kind: KindDistinct, Count: n, Window: Duration(window)}
}

// Flap returns a flap rule: one subject raising n times inside window without
// a sustained-healthy gap.
func Flap(name string, n int, window time.Duration) Rule {
	return Rule{Name: name, Kind: KindFlap, Count: n, Window: Duration(window)}
}

// OnChecker restricts the rule to subjects with the given name prefix.
func (r Rule) OnChecker(prefix string) Rule { r.Match.CheckerPrefix = prefix; return r }

// OnKinds restricts the rule to the given event kinds.
func (r Rule) OnKinds(kinds ...string) Rule { r.Match.Kinds = kinds; return r }

// OnStatuses restricts the rule's trigger statuses by name.
func (r Rule) OnStatuses(names ...string) Rule { r.Match.Statuses = names; return r }

// OnOutcomes restricts the rule's trigger events by recovery outcome.
func (r Rule) OnOutcomes(outcomes ...string) Rule { r.Match.Outcomes = outcomes; return r }

// WithHealthyFor sets the sustained-healthy reset gap.
func (r Rule) WithHealthyFor(d time.Duration) Rule { r.HealthyFor = Duration(d); return r }

// WithCooldown sets the post-fire suppression period.
func (r Rule) WithCooldown(d time.Duration) Rule { r.Cooldown = Duration(d); return r }

// WithGaugeGrowth gates a consecutive rule on the named gauge having grown by
// at least delta over the streak.
func (r Rule) WithGaugeGrowth(gauge string, delta float64) Rule {
	r.Gauge, r.GaugeDelta = gauge, delta
	return r
}

// WithSeverity sets the synthesized alarm's status by name.
func (r Rule) WithSeverity(status string) Rule { r.Severity = status; return r }

// ruleFile is the JSON rule-file schema: {"rules":[ ... ]}.
type ruleFile struct {
	Rules []Rule `json:"rules"`
}

// ParseRules decodes a JSON rule file ({"rules":[...]}) and validates every
// rule.
func ParseRules(data []byte) ([]Rule, error) {
	var f ruleFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("wdcep: rule file: %w", err)
	}
	if len(f.Rules) == 0 {
		return nil, fmt.Errorf("wdcep: rule file declares no rules")
	}
	for _, r := range f.Rules {
		if _, err := compileRule(r); err != nil {
			return nil, err
		}
	}
	return f.Rules, nil
}

// LoadRules reads and parses a JSON rule file from disk.
func LoadRules(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wdcep: rule file: %w", err)
	}
	return ParseRules(data)
}

// compiled is a rule with its match sets resolved to cheap runtime forms.
type compiled struct {
	rule       Rule
	kinds      []string // resolved: never empty
	statusMask uint32   // bit per trigger status; 0 = any abnormal
	outcomes   []string
	severity   watchdog.Status
	window     time.Duration
	healthyFor time.Duration
	cooldown   time.Duration
}

// compileRule validates r and resolves its match sets.
func compileRule(r Rule) (compiled, error) {
	c := compiled{
		rule:       r,
		window:     time.Duration(r.Window),
		healthyFor: time.Duration(r.HealthyFor),
		cooldown:   time.Duration(r.Cooldown),
		severity:   watchdog.StatusError,
	}
	if r.Name == "" {
		return c, fmt.Errorf("wdcep: rule with empty name")
	}
	switch r.Kind {
	case KindConsecutive:
		if r.Count < 2 {
			return c, fmt.Errorf("wdcep: rule %q: consecutive count must be ≥ 2, got %d", r.Name, r.Count)
		}
	case KindCount, KindDistinct:
		if r.Count < 1 {
			return c, fmt.Errorf("wdcep: rule %q: count must be ≥ 1, got %d", r.Name, r.Count)
		}
		if r.Count > maxWindowedCount {
			return c, fmt.Errorf("wdcep: rule %q: count %d exceeds the %d bound windowed state is sized for", r.Name, r.Count, maxWindowedCount)
		}
		if c.window <= 0 {
			return c, fmt.Errorf("wdcep: rule %q: %s rules need a positive window", r.Name, r.Kind)
		}
	case KindFlap:
		if r.Count < 2 {
			return c, fmt.Errorf("wdcep: rule %q: flap count must be ≥ 2, got %d", r.Name, r.Count)
		}
		if r.Count > maxWindowedCount {
			return c, fmt.Errorf("wdcep: rule %q: count %d exceeds the %d bound windowed state is sized for", r.Name, r.Count, maxWindowedCount)
		}
		if c.window <= 0 {
			return c, fmt.Errorf("wdcep: rule %q: flap rules need a positive window", r.Name)
		}
	default:
		return c, fmt.Errorf("wdcep: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	if r.Gauge != "" && r.Kind != KindConsecutive {
		return c, fmt.Errorf("wdcep: rule %q: gauge growth applies to consecutive rules only", r.Name)
	}
	c.kinds = r.Match.Kinds
	if len(c.kinds) == 0 {
		c.kinds = []string{EventReport, EventAlarm}
	}
	for _, k := range c.kinds {
		switch k {
		case EventReport, EventAlarm, EventMesh, EventRecovery, EventCEP:
		default:
			return c, fmt.Errorf("wdcep: rule %q: unknown event kind %q", r.Name, k)
		}
	}
	for _, name := range r.Match.Statuses {
		s, err := watchdog.ParseStatus(name)
		if err != nil {
			return c, fmt.Errorf("wdcep: rule %q: %w", r.Name, err)
		}
		if s == watchdog.StatusHealthy || s == watchdog.StatusContextPending {
			// Healthy is the reset signal, not a trigger; context-pending
			// means no execution happened at all.
			return c, fmt.Errorf("wdcep: rule %q: status %q cannot be a trigger", r.Name, name)
		}
		c.statusMask |= 1 << uint(s)
	}
	c.outcomes = r.Match.Outcomes
	if r.Severity != "" {
		s, err := watchdog.ParseStatus(r.Severity)
		if err != nil {
			return c, fmt.Errorf("wdcep: rule %q: severity: %w", r.Name, err)
		}
		if !s.Abnormal() {
			return c, fmt.Errorf("wdcep: rule %q: severity %q is not an abnormal status", r.Name, r.Severity)
		}
		c.severity = s
	}
	if c.cooldown <= 0 {
		c.cooldown = c.window
	}
	return c, nil
}

// subject reports whether ev falls under the rule at all (kind + subject
// prefix), independent of trigger/healthy classification.
func (c *compiled) subject(ev *Event) bool {
	ok := false
	for _, k := range c.kinds {
		if ev.Kind == k {
			ok = true
			break
		}
	}
	if !ok {
		return false
	}
	if p := c.rule.Match.CheckerPrefix; p != "" {
		if len(ev.Checker) < len(p) || ev.Checker[:len(p)] != p {
			return false
		}
	}
	return true
}

// trigger reports whether a subject event counts toward the rule's threshold.
func (c *compiled) trigger(ev *Event) bool {
	if c.statusMask != 0 {
		if c.statusMask&(1<<uint(ev.Status)) == 0 {
			return false
		}
	} else if !ev.Status.Abnormal() {
		return false
	}
	if len(c.outcomes) > 0 {
		ok := false
		for _, o := range c.outcomes {
			if ev.Outcome == o {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// healthy reports whether a subject event is a health signal for the rule —
// the recovery transition that breaks streaks and, sustained long enough,
// clears windows.
func (c *compiled) healthy(ev *Event) bool {
	return ev.Status == watchdog.StatusHealthy
}
