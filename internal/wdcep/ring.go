package wdcep

import "sync/atomic"

// DefaultRingSize is the publish ring capacity when Config.RingSize is zero.
// Detection journals emit tens of events per interval at worst; 8192 slots
// absorb a full storm between two evaluation pumps.
const DefaultRingSize = 8192

// slot is one ring cell. seq is the slot's turn counter (Vyukov bounded
// queue): a slot is free for publish position pos when seq == pos, occupied
// and readable at consume position pos when seq == pos+1.
type slot struct {
	seq atomic.Uint64
	ev  Event
}

// ring is a bounded multi-producer single-consumer queue. Producers never
// block: a full ring drops the event and bumps the drop counter, so a stalled
// consumer can't back-pressure the watchdog's report path. The single
// consumer is the engine's evaluation step, serialized by the engine mutex.
type ring struct {
	mask  uint64
	slots []slot
	_     [56]byte // keep the producer and consumer cursors on separate cache lines
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	drops atomic.Int64
}

// newRing returns a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), slots: make([]slot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// cap returns the ring capacity.
func (r *ring) cap() int { return len(r.slots) }

// publish enqueues ev, returning false (and counting a drop) when the ring
// is full. Safe for concurrent use from any number of goroutines.
func (r *ring) publish(ev Event) bool {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.head.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case seq < pos:
			// The consumer hasn't freed this slot from the previous lap:
			// the ring is full. Drop rather than wait — the publisher is
			// the driver's report path.
			r.drops.Add(1)
			return false
		default:
			// Another producer claimed pos but hasn't written yet; retry at
			// the current head.
			pos = r.head.Load()
		}
	}
}

// drain moves every ready event into out (appending, up to out's capacity)
// and frees the slots. Single-consumer: callers must serialize drains.
func (r *ring) drain(out []Event) []Event {
	pos := r.tail.Load()
	for len(out) < cap(out) {
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			break
		}
		out = append(out, s.ev)
		s.ev = Event{}
		s.seq.Store(pos + r.mask + 1)
		pos++
	}
	r.tail.Store(pos)
	return out
}

// dropped returns the lifetime count of events rejected on a full ring.
func (r *ring) dropped() int64 { return r.drops.Load() }
