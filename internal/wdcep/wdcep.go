// Package wdcep is a complex-event-processing layer over the watchdog
// detection event stream: it evaluates declarative temporal rules against the
// journal events the rest of the stack already produces (checker reports,
// alarms, mesh cluster verdicts, recovery-manager outcomes) and synthesizes
// alarms for cross-component and temporal failure scenarios no single checker
// can express — "abnormal for N consecutive intervals while a gauge grows",
// "K distinct checkers failing inside one window", "a mesh verdict flapping
// without a sustained-healthy gap", "recovery escalating repeatedly".
//
// This is the runtime-verification-over-event-streams idea (Cotroneo et al.,
// "Towards Runtime Verification via Event Stream Processing") applied to the
// paper's intrinsic watchdogs: point detections stay with the checkers, and
// the temporal/correlation layer consumes their event stream.
//
// The engine is built for the hot path the journal tap sits on:
//
//   - Publish is lock-free and non-blocking — a bounded MPMC ring buffer
//     (per-slot sequence numbers, Vyukov-style) accepts events from any
//     goroutine; when the ring is full the event is dropped and counted, so a
//     rule-evaluation stall can never back-pressure the driver.
//   - Evaluation is batched and explicit — Pump(now) runs on the driver's
//     report cadence with the driver's clock, so campaigns on a virtual clock
//     stay bit-deterministic, and the steady-state ingest path allocates
//     nothing.
//
// Rules are data: build them with the Rule builder API or load them from a
// JSON rule file (see LoadRules); wdruntime wires either form through the
// -wd-rules flag. A fired rule becomes a Firing, which wdruntime journals as
// a KindCEP event and re-injects as a synthesized driver alarm so breakers,
// damping, recovery, and mesh gossip treat temporal detections uniformly
// with intrinsic checker alarms.
package wdcep

import (
	"time"

	"gowatchdog/internal/watchdog"
)

// Event kinds, mirroring the wdobs journal kind strings. wdcep cannot import
// wdobs (wdobs exposes the engine snapshot, so the dependency points the
// other way); wdobs's tests pin the two sets of constants together.
const (
	// EventReport is a journaled checker report.
	EventReport = "report"
	// EventAlarm is a raised driver alarm.
	EventAlarm = "alarm"
	// EventMesh is a mesh cluster-verdict transition (raise or clear).
	EventMesh = "mesh"
	// EventRecovery is a recovery-manager outcome (recovered, retried,
	// failed, escalated, unmatched).
	EventRecovery = "recovery"
	// EventCEP is a fired temporal rule. CEP events re-enter the stream but
	// only match rules that ask for the kind explicitly, so rule cascades
	// are opt-in and accidental feedback loops are impossible.
	EventCEP = "cep"
)

// Event is the engine's wire unit: a flattened journal entry small enough to
// copy through the ring by value. The strings are shared, not copied, so
// publishing is a handful of word moves.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// Checker is the subject name ("kvs.wal", "wdmesh.node-2", ...).
	Checker string
	// Status is the report status carried by the journal entry.
	Status watchdog.Status
	// Outcome is the recovery outcome name for EventRecovery events.
	Outcome string
	// Rule is the fired rule name for EventCEP events.
	Rule string
	// Time is the event's timestamp on the driver's clock.
	Time time.Time
}
