package wdcep

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowatchdog/internal/watchdog"
)

// maxSubjects bounds each rule's per-subject state maps (streaks, flap
// trackers). Checker and mesh-node populations are small; the cap only
// exists so a pathological subject-name generator can't grow memory without
// bound. Overflowing subjects are ignored and counted in the snapshot.
const maxSubjects = 1024

// maxWindowedCount bounds count/distinct/flap thresholds so their hit
// buffers (sized a small multiple of the threshold) stay bounded while the
// threshold always remains reachable.
const maxWindowedCount = 4096

// defaultMaxFirings bounds the retained firing log.
const defaultMaxFirings = 256

// Config configures an Engine.
type Config struct {
	// Rules are the temporal rules to evaluate. At least one is required.
	Rules []Rule
	// RingSize is the publish ring capacity (default DefaultRingSize,
	// rounded up to a power of two).
	RingSize int
	// EvalEvery rate-limits Pump: evaluations run at most once per period.
	// Zero evaluates on every Pump call.
	EvalEvery time.Duration
	// MaxFirings bounds the retained firing log (default 256); older
	// firings are dropped and counted.
	MaxFirings int
	// GaugeSource resolves gauge names for rules with a gauge-growth gate
	// (wdruntime passes the app registry). Nil disables gauge gates: rules
	// requiring growth never fire.
	GaugeSource func(name string) (float64, bool)
	// OnFire, when non-nil, is invoked synchronously for every firing, under
	// the engine's evaluation lock. It must not call back into Evaluate,
	// Pump, or Drain; Publish is safe.
	OnFire func(Firing)
}

// Firing is one fired rule instance.
type Firing struct {
	// Rule is the fired rule's name.
	Rule string `json:"rule"`
	// Status is the rule's severity — the status the synthesized alarm
	// carries.
	Status watchdog.Status `json:"status"`
	// Time is the evaluation time the rule fired at.
	Time time.Time `json:"time"`
	// Count is the threshold measurement at fire time (streak length,
	// events or subjects in window, raise count).
	Count int `json:"count"`
	// Checkers lists the contributing subjects, sorted.
	Checkers []string `json:"checkers,omitempty"`
	// First and Last bound the contributing event window: First is the
	// earliest contributing point event — the anchor campaign latency
	// scoring measures detection lag against.
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// Detail is a human-readable summary.
	Detail string `json:"detail,omitempty"`
}

// Snapshot is the engine's counters view, served by wdobs under /watchdog
// and rendered by wdstat.
type Snapshot struct {
	// Rules is the number of loaded rules.
	Rules int `json:"rules"`
	// Published counts events accepted into the ring; Dropped counts
	// events rejected on a full ring; Ingested counts events drained into
	// rule evaluation.
	Published int64 `json:"published_total"`
	Dropped   int64 `json:"dropped_total"`
	Ingested  int64 `json:"ingested_total"`
	// Evaluations counts evaluation passes; Fired counts rule firings.
	Evaluations int64 `json:"evaluations_total"`
	Fired       int64 `json:"fired_total"`
	// RingCap is the publish ring capacity.
	RingCap int `json:"ring_cap"`
	// FiringsDropped counts firings evicted from the bounded firing log;
	// SubjectsCapped counts events ignored because a rule's per-subject
	// state map was full.
	FiringsDropped int64 `json:"firings_dropped_total,omitempty"`
	SubjectsCapped int64 `json:"subjects_capped_total,omitempty"`
	// RuleStats carries per-rule fire counts, in rule order.
	RuleStats []RuleStat `json:"rule_stats,omitempty"`
}

// RuleStat is one rule's counters.
type RuleStat struct {
	Name      string    `json:"name"`
	Kind      RuleKind  `json:"kind"`
	Fired     int64     `json:"fired"`
	LastFired time.Time `json:"last_fired"`
}

// Engine evaluates temporal rules over a published event stream. Publish is
// lock-free and safe from any goroutine; Pump/Evaluate/Drain serialize on an
// internal mutex and are driven by the owner (wdruntime pumps on the
// driver's report cadence).
type Engine struct {
	ring       *ring
	gauge      func(string) (float64, bool)
	onFire     func(Firing)
	evalEvery  time.Duration
	maxFirings int

	published atomic.Int64

	mu             sync.Mutex
	rules          []*ruleState
	batch          []Event
	lastEval       time.Time
	haveEval       bool
	evals          int64
	ingested       int64
	firedTotal     int64
	firings        []Firing
	firingsDropped int64
	subjectsCapped int64
}

// NewEngine compiles the rules and returns a ready engine.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("wdcep: engine needs at least one rule")
	}
	e := &Engine{
		ring:       newRing(cfg.RingSize),
		gauge:      cfg.GaugeSource,
		onFire:     cfg.OnFire,
		evalEvery:  cfg.EvalEvery,
		maxFirings: cfg.MaxFirings,
	}
	if e.maxFirings <= 0 {
		e.maxFirings = defaultMaxFirings
	}
	seen := make(map[string]bool, len(cfg.Rules))
	for _, r := range cfg.Rules {
		c, err := compileRule(r)
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("wdcep: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		e.rules = append(e.rules, newRuleState(c))
	}
	e.batch = make([]Event, 0, e.ring.cap())
	return e, nil
}

// Publish offers an event to the engine without blocking. It returns false
// (and the drop is counted) when the ring is full. Safe for concurrent use.
func (e *Engine) Publish(ev Event) bool {
	if !e.ring.publish(ev) {
		return false
	}
	e.published.Add(1)
	return true
}

// Pump runs an evaluation pass at now if one is due (EvalEvery has elapsed
// since the last pass) and the engine is not already evaluating. It is the
// cheap per-report call wdruntime wires onto the driver.
func (e *Engine) Pump(now time.Time) {
	if !e.mu.TryLock() {
		// An evaluation is in flight; it will drain our events too.
		return
	}
	defer e.mu.Unlock()
	if e.haveEval && e.evalEvery > 0 && now.Sub(e.lastEval) < e.evalEvery {
		return
	}
	e.evaluateLocked(now)
}

// Evaluate forces an evaluation pass at now, ignoring the EvalEvery gate.
func (e *Engine) Evaluate(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evaluateLocked(now)
}

// Drain ingests everything still buffered in the ring and runs one final
// evaluation pass — the shutdown call wdruntime makes before flushing the
// journal, so a rule completed by the last pre-shutdown events still fires
// and lands in the journal.
func (e *Engine) Drain(now time.Time) { e.Evaluate(now) }

// evaluateLocked drains the ring into the rules and runs the threshold
// checks. Caller holds e.mu.
func (e *Engine) evaluateLocked(now time.Time) {
	e.lastEval = now
	e.haveEval = true
	e.evals++
	for {
		e.batch = e.ring.drain(e.batch[:0])
		if len(e.batch) == 0 {
			break
		}
		e.ingested += int64(len(e.batch))
		for i := range e.batch {
			ev := &e.batch[i]
			for _, rs := range e.rules {
				rs.ingest(ev, e)
			}
		}
		if len(e.batch) < cap(e.batch) {
			// The ring had fewer events than one full batch: done. A full
			// batch means producers may still be ahead; loop to drain them.
			break
		}
	}
	for _, rs := range e.rules {
		rs.evaluate(now, e)
	}
}

// fire records a firing and notifies the OnFire hook. Caller holds e.mu.
func (e *Engine) fire(f Firing) {
	e.firedTotal++
	if len(e.firings) >= e.maxFirings {
		n := copy(e.firings, e.firings[1:])
		e.firings = e.firings[:n]
		e.firingsDropped++
	}
	e.firings = append(e.firings, f)
	if e.onFire != nil {
		e.onFire(f)
	}
}

// Firings returns a copy of the retained firing log, oldest first.
func (e *Engine) Firings() []Firing {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Firing(nil), e.firings...)
}

// Fired returns the lifetime firing count.
func (e *Engine) Fired() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firedTotal
}

// RingDropped returns the lifetime count of events dropped on a full ring.
func (e *Engine) RingDropped() int64 { return e.ring.dropped() }

// Snapshot assembles the counters view.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Snapshot{
		Rules:          len(e.rules),
		Published:      e.published.Load(),
		Dropped:        e.ring.dropped(),
		Ingested:       e.ingested,
		Evaluations:    e.evals,
		Fired:          e.firedTotal,
		RingCap:        e.ring.cap(),
		FiringsDropped: e.firingsDropped,
		SubjectsCapped: e.subjectsCapped,
	}
	for _, rs := range e.rules {
		s.RuleStats = append(s.RuleStats, RuleStat{
			Name:      rs.c.rule.Name,
			Kind:      rs.c.rule.Kind,
			Fired:     rs.fired,
			LastFired: rs.lastFired,
		})
	}
	return s
}

// Replay runs a recorded event sequence through a fresh engine, evaluating
// after every event (earliest-possible firing semantics), and returns the
// firings — the offline path wdreplay -rules uses.
func Replay(rules []Rule, events []Event) ([]Firing, error) {
	eng, err := NewEngine(Config{Rules: rules, MaxFirings: len(events) + 1})
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		eng.Publish(ev)
		eng.Evaluate(ev.Time)
	}
	return eng.Firings(), nil
}

// ── per-rule state ──────────────────────────────────────────────────────────

// hit is one windowed trigger event.
type hit struct {
	t       time.Time
	checker string
}

// streak tracks one subject's consecutive-abnormal run.
type streak struct {
	n          int
	first      time.Time
	last       time.Time
	gaugeStart float64
	gaugeOK    bool
	fired      bool
}

// flapTrack tracks one subject's healthy→abnormal raise history.
type flapTrack struct {
	abnormal      bool
	healthySet    bool
	healthyAt     time.Time
	raises        []time.Time
	cooldownUntil time.Time
}

// ruleState is one compiled rule plus its runtime accumulation state. All
// access is under the engine mutex.
type ruleState struct {
	c compiled

	// count/distinct: windowed trigger hits plus the shared healthy-gap
	// tracker, and a reused scratch set for distinct counting.
	hits          []hit
	hitCap        int
	healthySet    bool
	healthyAt     time.Time
	cooldownUntil time.Time
	scratch       map[string]struct{}

	// consecutive / flap: per-subject trackers.
	streaks map[string]*streak
	flaps   map[string]*flapTrack

	fired     int64
	lastFired time.Time
}

func newRuleState(c compiled) *ruleState {
	rs := &ruleState{c: c}
	switch c.rule.Kind {
	case KindCount, KindDistinct:
		rs.hitCap = c.rule.Count * 4
		if rs.hitCap < 64 {
			rs.hitCap = 64
		}
		rs.hits = make([]hit, 0, rs.hitCap)
		rs.scratch = make(map[string]struct{}, 16)
	case KindConsecutive:
		rs.streaks = make(map[string]*streak, 8)
	case KindFlap:
		rs.flaps = make(map[string]*flapTrack, 8)
	}
	return rs
}

// ingest feeds one event into the rule's accumulation state.
func (rs *ruleState) ingest(ev *Event, e *Engine) {
	if !rs.c.subject(ev) {
		return
	}
	switch rs.c.rule.Kind {
	case KindCount, KindDistinct:
		rs.ingestWindowed(ev)
	case KindConsecutive:
		rs.ingestConsecutive(ev, e)
	case KindFlap:
		rs.ingestFlap(ev, e)
	}
}

func (rs *ruleState) ingestWindowed(ev *Event) {
	if rs.c.healthy(ev) {
		// Remember when health began; a later trigger checks whether the
		// gap was long enough to clear the window. The gap is evaluated
		// across the rule's whole subject set — these rules correlate
		// across subjects by design.
		if !rs.healthySet {
			rs.healthySet = true
			rs.healthyAt = ev.Time
		}
		return
	}
	if !rs.c.trigger(ev) {
		return
	}
	if rs.healthySet {
		if rs.c.healthyFor > 0 && ev.Time.Sub(rs.healthyAt) >= rs.c.healthyFor {
			rs.hits = rs.hits[:0]
		}
		rs.healthySet = false
	}
	if len(rs.hits) == rs.hitCap {
		// Drop the oldest half in one move: amortized O(1) per insert, and
		// since hitCap ≥ 4×Count the surviving half still spans ≥ 2×Count
		// hits, so the threshold stays reachable.
		n := copy(rs.hits, rs.hits[rs.hitCap/2:])
		rs.hits = rs.hits[:n]
	}
	rs.hits = append(rs.hits, hit{t: ev.Time, checker: ev.Checker})
}

func (rs *ruleState) ingestConsecutive(ev *Event, e *Engine) {
	st := rs.streaks[ev.Checker]
	switch {
	case rs.c.trigger(ev):
		if st == nil {
			if len(rs.streaks) >= maxSubjects {
				e.subjectsCapped++
				return
			}
			st = &streak{}
			rs.streaks[ev.Checker] = st
		}
		if st.n == 0 {
			st.first = ev.Time
			st.gaugeOK = false
			if rs.c.rule.Gauge != "" && e.gauge != nil {
				st.gaugeStart, st.gaugeOK = e.gauge(rs.c.rule.Gauge)
			}
		}
		st.n++
		st.last = ev.Time
	case rs.c.healthy(ev):
		if st != nil {
			st.n = 0
			st.fired = false
		}
	}
}

func (rs *ruleState) ingestFlap(ev *Event, e *Engine) {
	ft := rs.flaps[ev.Checker]
	switch {
	case rs.c.trigger(ev):
		if ft == nil {
			if len(rs.flaps) >= maxSubjects {
				e.subjectsCapped++
				return
			}
			raiseCap := rs.c.rule.Count * 2
			if raiseCap < 16 {
				raiseCap = 16
			}
			ft = &flapTrack{raises: make([]time.Time, 0, raiseCap)}
			rs.flaps[ev.Checker] = ft
		}
		if ft.healthySet {
			if rs.c.healthyFor > 0 && ev.Time.Sub(ft.healthyAt) >= rs.c.healthyFor {
				// A sustained-healthy gap: the subject genuinely recovered,
				// so earlier raises no longer count as flapping.
				ft.raises = ft.raises[:0]
			}
			ft.healthySet = false
		}
		if !ft.abnormal {
			ft.abnormal = true
			if len(ft.raises) == cap(ft.raises) {
				// Amortized O(1) drop-oldest-half; the cap is 2×Count so the
				// surviving half still reaches the threshold.
				n := copy(ft.raises, ft.raises[cap(ft.raises)/2:])
				ft.raises = ft.raises[:n]
			}
			ft.raises = append(ft.raises, ev.Time)
		}
	case rs.c.healthy(ev):
		if ft != nil {
			ft.abnormal = false
			if !ft.healthySet {
				ft.healthySet = true
				ft.healthyAt = ev.Time
			}
		}
	}
}

// evaluate runs the rule's threshold check at now, firing through e.
func (rs *ruleState) evaluate(now time.Time, e *Engine) {
	switch rs.c.rule.Kind {
	case KindCount, KindDistinct:
		rs.evaluateWindowed(now, e)
	case KindConsecutive:
		rs.evaluateConsecutive(now, e)
	case KindFlap:
		rs.evaluateFlap(now, e)
	}
}

func (rs *ruleState) evaluateWindowed(now time.Time, e *Engine) {
	// Prune hits that slid out of the window, in place.
	cutoff := now.Add(-rs.c.window)
	keep := 0
	for keep < len(rs.hits) && rs.hits[keep].t.Before(cutoff) {
		keep++
	}
	if keep > 0 {
		n := copy(rs.hits, rs.hits[keep:])
		rs.hits = rs.hits[:n]
	}
	if now.Before(rs.cooldownUntil) || len(rs.hits) == 0 {
		return
	}
	measured := len(rs.hits)
	if rs.c.rule.Kind == KindDistinct {
		clear(rs.scratch)
		for i := range rs.hits {
			rs.scratch[rs.hits[i].checker] = struct{}{}
		}
		measured = len(rs.scratch)
	}
	if measured < rs.c.rule.Count {
		return
	}
	f := Firing{
		Rule:   rs.c.rule.Name,
		Status: rs.c.severity,
		Time:   now,
		Count:  measured,
		First:  rs.hits[0].t,
		Last:   rs.hits[len(rs.hits)-1].t,
	}
	f.Checkers = distinctCheckers(rs.hits)
	f.Detail = fmt.Sprintf("%d events from %d checkers within %v",
		len(rs.hits), len(f.Checkers), rs.c.window)
	rs.hits = rs.hits[:0]
	rs.cooldownUntil = now.Add(rs.c.cooldown)
	rs.recordFire(f, e)
}

func (rs *ruleState) evaluateConsecutive(now time.Time, e *Engine) {
	for name, st := range rs.streaks {
		if st.fired || st.n < rs.c.rule.Count {
			continue
		}
		if rs.c.rule.Gauge != "" {
			// Fire only on confirmed growth: no gauge source, a vanished
			// gauge, or insufficient delta all keep the rule quiet.
			if !st.gaugeOK || e.gauge == nil {
				continue
			}
			cur, ok := e.gauge(rs.c.rule.Gauge)
			if !ok || cur-st.gaugeStart < rs.c.rule.GaugeDelta {
				continue
			}
		}
		st.fired = true
		f := Firing{
			Rule:     rs.c.rule.Name,
			Status:   rs.c.severity,
			Time:     now,
			Count:    st.n,
			Checkers: []string{name},
			First:    st.first,
			Last:     st.last,
			Detail:   fmt.Sprintf("%s abnormal on %d consecutive events", name, st.n),
		}
		if rs.c.rule.Gauge != "" {
			f.Detail += fmt.Sprintf(" while gauge %s grew ≥ %g", rs.c.rule.Gauge, rs.c.rule.GaugeDelta)
		}
		rs.recordFire(f, e)
	}
}

func (rs *ruleState) evaluateFlap(now time.Time, e *Engine) {
	cutoff := now.Add(-rs.c.window)
	for name, ft := range rs.flaps {
		keep := 0
		for keep < len(ft.raises) && ft.raises[keep].Before(cutoff) {
			keep++
		}
		if keep > 0 {
			n := copy(ft.raises, ft.raises[keep:])
			ft.raises = ft.raises[:n]
		}
		if len(ft.raises) < rs.c.rule.Count || now.Before(ft.cooldownUntil) {
			continue
		}
		f := Firing{
			Rule:     rs.c.rule.Name,
			Status:   rs.c.severity,
			Time:     now,
			Count:    len(ft.raises),
			Checkers: []string{name},
			First:    ft.raises[0],
			Last:     ft.raises[len(ft.raises)-1],
			Detail: fmt.Sprintf("%s raised %d times within %v without a sustained-healthy gap",
				name, len(ft.raises), rs.c.window),
		}
		ft.raises = ft.raises[:0]
		ft.cooldownUntil = now.Add(rs.c.cooldown)
		rs.recordFire(f, e)
	}
}

// recordFire updates the rule counters and hands the firing to the engine.
func (rs *ruleState) recordFire(f Firing, e *Engine) {
	rs.fired++
	rs.lastFired = f.Time
	e.fire(f)
}

// distinctCheckers returns the sorted unique checker names among hits.
func distinctCheckers(hits []hit) []string {
	out := make([]string, 0, 4)
	for i := range hits {
		name := hits[i].checker
		found := false
		for _, have := range out {
			if have == name {
				found = true
				break
			}
		}
		if !found {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
