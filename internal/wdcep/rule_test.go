package wdcep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
)

const sampleRuleFile = `{
  "rules": [
    {
      "name": "wal-streak-backlog",
      "kind": "consecutive",
      "count": 3,
      "match": {"checker_prefix": "kvs.wal"},
      "gauge": "wal.backlog",
      "gauge_delta": 100,
      "severity": "stuck"
    },
    {
      "name": "cluster-spread",
      "kind": "distinct",
      "count": 2,
      "window": "30s",
      "match": {"kinds": ["alarm"]}
    },
    {
      "name": "mesh-verdict-flap",
      "kind": "flap",
      "count": 2,
      "window": "5m",
      "healthy_for": "1m",
      "match": {"kinds": ["mesh"], "checker_prefix": "wdmesh."}
    },
    {
      "name": "recovery-escalation",
      "kind": "count",
      "count": 2,
      "window": "10m",
      "healthy_for": "45s",
      "cooldown": "2m",
      "match": {"kinds": ["recovery"], "outcomes": ["escalated"]}
    }
  ]
}`

func TestParseRules(t *testing.T) {
	rules, err := ParseRules([]byte(sampleRuleFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	r := rules[0]
	if r.Kind != KindConsecutive || r.Gauge != "wal.backlog" || r.GaugeDelta != 100 {
		t.Errorf("rule 0 = %+v, want consecutive with gauge gate", r)
	}
	if r.Severity != "stuck" {
		t.Errorf("severity = %q, want stuck", r.Severity)
	}
	if d := time.Duration(rules[1].Window); d != 30*time.Second {
		t.Errorf("window = %v, want 30s", d)
	}
	if d := time.Duration(rules[3].Cooldown); d != 2*time.Minute {
		t.Errorf("cooldown = %v, want 2m", d)
	}
	// The parsed rules must compile into an engine as-is.
	if _, err := NewEngine(Config{Rules: rules}); err != nil {
		t.Fatalf("parsed rules rejected by the engine: %v", err)
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", `{"rules":[]}`, "no rules"},
		{"not json", `{`, "rule file"},
		{"bad duration", `{"rules":[{"name":"x","kind":"count","count":2,"window":"soon"}]}`, "bad duration"},
		{"bad kind", `{"rules":[{"name":"x","kind":"sliding","count":2}]}`, "unknown kind"},
		{"bad status", `{"rules":[{"name":"x","kind":"count","count":2,"window":"1m","match":{"statuses":["wedged"]}}]}`, "unknown status"},
	}
	for _, tc := range cases {
		_, err := ParseRules([]byte(tc.body))
		if err == nil {
			t.Errorf("%s: ParseRules accepted invalid input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadRules(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(path, []byte(sampleRuleFile), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("loaded %d rules, want 4", len(rules))
	}
	if _, err := LoadRules(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadRules on a missing file succeeded")
	}
}

func TestDurationRoundTrip(t *testing.T) {
	rules := []Rule{CountRule("x", 2, 90*time.Second).WithHealthyFor(time.Minute)}
	data, err := json.Marshal(ruleFile{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"1m30s"`) {
		t.Errorf("marshaled rule file %s does not render windows as duration strings", data)
	}
	back, err := ParseRules(data)
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(back[0].Window) != 90*time.Second || time.Duration(back[0].HealthyFor) != time.Minute {
		t.Errorf("round trip = %+v, want original durations", back[0])
	}
	// Integer nanoseconds decode too (hand-written files).
	var d Duration
	if err := json.Unmarshal([]byte("1500000000"), &d); err != nil || time.Duration(d) != 1500*time.Millisecond {
		t.Errorf("integer duration decode = %v, %v", d, err)
	}
}

func TestSeverityCarriedIntoFiring(t *testing.T) {
	eng := mustEngine(t, Config{Rules: []Rule{
		CountRule("burst", 1, time.Minute).WithSeverity("stuck"),
	}})
	feed(eng, report("a", watchdog.StatusError, 0))
	firings := eng.Firings()
	if len(firings) != 1 || firings[0].Status != watchdog.StatusStuck {
		t.Fatalf("firings = %+v, want one with status stuck", firings)
	}
}
