package memtable

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New()
	m.Put([]byte("b"), []byte("2"))
	m.Put([]byte("a"), []byte("1"))
	v, tomb, ok := m.Get([]byte("a"))
	if !ok || tomb || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v, %v", v, tomb, ok)
	}
	if _, _, ok := m.Get([]byte("zzz")); ok {
		t.Fatal("Get(zzz) found a value")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestOverwrite(t *testing.T) {
	m := New()
	m.Put([]byte("k"), []byte("v1"))
	m.Put([]byte("k"), []byte("v2"))
	v, _, _ := m.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("Get = %q", v)
	}
	if m.Len() != 1 || m.Nodes() != 1 {
		t.Fatalf("Len=%d Nodes=%d", m.Len(), m.Nodes())
	}
}

func TestDeleteTombstone(t *testing.T) {
	m := New()
	m.Put([]byte("k"), []byte("v"))
	m.Delete([]byte("k"))
	_, tomb, ok := m.Get([]byte("k"))
	if !ok || !tomb {
		t.Fatalf("tombstone not visible: tomb=%v ok=%v", tomb, ok)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after delete", m.Len())
	}
	if m.Nodes() != 1 {
		t.Fatalf("Nodes = %d, tombstone should remain", m.Nodes())
	}
	// Deleting an absent key still records a tombstone (needed to shadow
	// older SSTable values).
	m.Delete([]byte("never-existed"))
	_, tomb, ok = m.Get([]byte("never-existed"))
	if !ok || !tomb {
		t.Fatal("tombstone for absent key not recorded")
	}
	// Re-put resurrects.
	m.Put([]byte("k"), []byte("v2"))
	v, tomb, ok := m.Get([]byte("k"))
	if !ok || tomb || string(v) != "v2" {
		t.Fatalf("resurrect failed: %q %v %v", v, tomb, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestIterateSortedOrder(t *testing.T) {
	m := New()
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for _, k := range keys {
		m.Put([]byte(k), []byte(k))
	}
	var got []string
	m.Iterate(func(e Entry) bool {
		got = append(got, string(e.Key))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.Put([]byte{byte('a' + i)}, nil)
	}
	n := 0
	m.Iterate(func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestScanRange(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
	}
	m.Delete([]byte("k04")) // tombstones are skipped in Scan
	var got []string
	m.Scan([]byte("k03"), []byte("k07"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"k03", "k05", "k06"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	// Open-ended scan.
	got = nil
	m.Scan([]byte("k08"), nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "k08" || got[1] != "k09" {
		t.Fatalf("open scan = %v", got)
	}
}

func TestEntriesSnapshotIsDeepCopy(t *testing.T) {
	m := New()
	m.Put([]byte("k"), []byte("v"))
	entries := m.Entries()
	entries[0].Value[0] = 'X'
	v, _, _ := m.Get([]byte("k"))
	if string(v) != "v" {
		t.Fatal("Entries snapshot shares memory with table")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	m := New()
	m.Put([]byte("k"), []byte("value"))
	v, _, _ := m.Get([]byte("k"))
	v[0] = 'X'
	v2, _, _ := m.Get([]byte("k"))
	if string(v2) != "value" {
		t.Fatal("Get returned aliased memory")
	}
}

func TestPutCopiesArguments(t *testing.T) {
	m := New()
	k := []byte("key")
	v := []byte("val")
	m.Put(k, v)
	k[0] = 'X'
	v[0] = 'X'
	got, _, ok := m.Get([]byte("key"))
	if !ok || string(got) != "val" {
		t.Fatalf("table aliased caller buffers: %q %v", got, ok)
	}
}

func TestApproxBytesGrows(t *testing.T) {
	m := New()
	before := m.ApproxBytes()
	m.Put([]byte("key"), make([]byte, 1000))
	if m.ApproxBytes() <= before {
		t.Fatal("ApproxBytes did not grow")
	}
	mid := m.ApproxBytes()
	m.Put([]byte("key"), make([]byte, 10)) // shrinking overwrite
	if m.ApproxBytes() >= mid {
		t.Fatal("ApproxBytes did not shrink on smaller overwrite")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Put([]byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v"))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Get([]byte(fmt.Sprintf("w0-%d", i)))
				m.Len()
			}
		}()
	}
	wg.Wait()
	if m.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", m.Len())
	}
}

// Property: the table behaves like a sorted map (model-based test against a
// plain Go map + sort).
func TestModelEquivalenceProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		m := New()
		model := map[string]string{}
		tombs := map[string]bool{}
		for _, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key)
			if o.Del {
				m.Delete([]byte(k))
				delete(model, k)
				tombs[k] = true
			} else {
				v := fmt.Sprintf("v%05d", o.Val)
				m.Put([]byte(k), []byte(v))
				model[k] = v
				delete(tombs, k)
			}
		}
		if m.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, tomb, ok := m.Get([]byte(k))
			if !ok || tomb || string(got) != v {
				return false
			}
		}
		for k := range tombs {
			_, tomb, ok := m.Get([]byte(k))
			if !ok || !tomb {
				return false
			}
		}
		// Entries are sorted and complete.
		entries := m.Entries()
		if len(entries) != len(model)+len(tombs) {
			return false
		}
		for i := 1; i < len(entries); i++ {
			if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
