package memtable

import (
	"fmt"
	"testing"
)

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key/%06d", i))
	}
	return keys
}

func BenchmarkPut(b *testing.B) {
	m := New()
	keys := benchKeys(4096)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(keys[i%len(keys)], val)
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := New()
	keys := benchKeys(4096)
	for _, k := range keys {
		m.Put(k, []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetMiss(b *testing.B) {
	m := New()
	for _, k := range benchKeys(4096) {
		m.Put(k, []byte("value"))
	}
	missing := []byte("zzz/not-there")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := m.Get(missing); ok {
			b.Fatal("hit")
		}
	}
}

func BenchmarkEntriesSnapshot(b *testing.B) {
	m := New()
	for _, k := range benchKeys(1024) {
		m.Put(k, []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if es := m.Entries(); len(es) != 1024 {
			b.Fatalf("entries = %d", len(es))
		}
	}
}
