// Package memtable implements the sorted in-memory table (a skiplist) that
// backs the kvs indexer. Writes land here first; the disk flusher drains
// full memtables into SSTables.
//
// Deletions are recorded as tombstones so that a flushed SSTable can shadow
// older values for the same key during reads and compaction.
package memtable

import (
	"bytes"
	"math/rand"
	"sync"
)

const maxHeight = 12

// Entry is one key-value pair; Tombstone marks a deletion.
type Entry struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

type node struct {
	entry Entry
	next  [maxHeight]*node
}

// Table is a concurrency-safe sorted map from []byte keys to values with
// tombstone support. The zero value is not usable; call New.
type Table struct {
	mu     sync.RWMutex
	head   *node
	height int
	rng    *rand.Rand
	count  int   // live (non-tombstone) entries
	nodes  int   // total nodes including tombstones
	bytes  int64 // approximate memory footprint
}

// New returns an empty table. The skiplist's level generator is seeded
// deterministically so tests are reproducible.
func New() *Table {
	return &Table{
		head:   &node{},
		height: 1,
		rng:    rand.New(rand.NewSource(0x5EED)),
	}
}

func (t *Table) randomHeight() int {
	h := 1
	for h < maxHeight && t.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key and fills prev
// with the rightmost node before it at every level.
func (t *Table) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := t.head
	for level := t.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].entry.Key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or overwrites key with value.
func (t *Table) Put(key, value []byte) {
	t.set(Entry{Key: append([]byte(nil), key...), Value: append([]byte(nil), value...)})
}

// Delete records a tombstone for key.
func (t *Table) Delete(key []byte) {
	t.set(Entry{Key: append([]byte(nil), key...), Tombstone: true})
}

func (t *Table) set(e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var prev [maxHeight]*node
	x := t.findGreaterOrEqual(e.Key, &prev)
	if x != nil && bytes.Equal(x.entry.Key, e.Key) {
		// Overwrite in place; adjust live count and size.
		wasLive := !x.entry.Tombstone
		t.bytes += int64(len(e.Value) - len(x.entry.Value))
		x.entry.Value = e.Value
		x.entry.Tombstone = e.Tombstone
		isLive := !e.Tombstone
		if wasLive && !isLive {
			t.count--
		} else if !wasLive && isLive {
			t.count++
		}
		return
	}
	h := t.randomHeight()
	if h > t.height {
		for level := t.height; level < h; level++ {
			prev[level] = t.head
		}
		t.height = h
	}
	n := &node{entry: e}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	t.nodes++
	t.bytes += int64(len(e.Key) + len(e.Value) + 64)
	if !e.Tombstone {
		t.count++
	}
}

// Get returns the value for key. ok is false if the key is absent;
// a tombstoned key returns ok true with tombstone true.
func (t *Table) Get(key []byte) (value []byte, tombstone, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	x := t.findGreaterOrEqual(key, nil)
	if x == nil || !bytes.Equal(x.entry.Key, key) {
		return nil, false, false
	}
	if x.entry.Tombstone {
		return nil, true, true
	}
	out := make([]byte, len(x.entry.Value))
	copy(out, x.entry.Value)
	return out, false, true
}

// Len returns the number of live (non-tombstone) entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Nodes returns the total number of entries including tombstones.
func (t *Table) Nodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// ApproxBytes returns the approximate memory footprint, used by the flusher
// to decide when a memtable is full.
func (t *Table) ApproxBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Iterate calls fn on every entry (tombstones included) in ascending key
// order. fn must not modify the table; returning false stops iteration.
func (t *Table) Iterate(fn func(e Entry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for x := t.head.next[0]; x != nil; x = x.next[0] {
		if !fn(x.entry) {
			return
		}
	}
}

// Entries returns a copy of all entries (tombstones included) in ascending
// key order — the flusher's snapshot input.
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, t.nodes)
	for x := t.head.next[0]; x != nil; x = x.next[0] {
		e := Entry{
			Key:       append([]byte(nil), x.entry.Key...),
			Tombstone: x.entry.Tombstone,
		}
		if !x.entry.Tombstone {
			e.Value = append([]byte(nil), x.entry.Value...)
		}
		out = append(out, e)
	}
	return out
}

// Ceil returns a copy of the first entry (tombstones included) with
// key >= key, seeking through the skiplist in O(log n). The bounded scan
// merge uses it as a resumable cursor: re-seeking per step keeps the lock
// hold times tiny at the cost of a log-factor, which is far cheaper than
// materializing the whole range.
func (t *Table) Ceil(key []byte) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	x := t.findGreaterOrEqual(key, nil)
	if x == nil {
		return Entry{}, false
	}
	e := Entry{
		Key:       append([]byte(nil), x.entry.Key...),
		Tombstone: x.entry.Tombstone,
	}
	if !x.entry.Tombstone {
		e.Value = append([]byte(nil), x.entry.Value...)
	}
	return e, true
}

// Scan calls fn on live entries with start <= key < end (nil end = no upper
// bound), in ascending order; returning false stops the scan.
func (t *Table) Scan(start, end []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	x := t.findGreaterOrEqual(start, nil)
	for ; x != nil; x = x.next[0] {
		if end != nil && bytes.Compare(x.entry.Key, end) >= 0 {
			return
		}
		if x.entry.Tombstone {
			continue
		}
		if !fn(x.entry.Key, x.entry.Value) {
			return
		}
	}
}
