// Package sdnotify is a dependency-free client for the systemd service
// notification protocol (sd_notify(3)): short datagrams on the unixgram
// socket named by $NOTIFY_SOCKET. It exists so the watchdog stack can extend
// the paper's escalation ladder one rung past the process boundary — a
// supervised daemon proves liveness to its supervisor by feeding the external
// watchdog, and a hung or alarming daemon simply stops feeding.
//
// The contract the runtime layer builds on top (see wdruntime):
//
//	Ready    once, when the stack is serving;
//	Feed     every check interval, but only while the intrinsic watchdog
//	         verdict is healthy — the feed is gated on real health, not on
//	         the feeding goroutine being scheduled;
//	Stopping exactly once on drain, disarming the supervisor's timer so a
//	         deliberate shutdown is never mistaken for a hang;
//	Trigger  when in-process recovery gives up, demanding an immediate
//	         external restart (WATCHDOG=trigger).
//
// Every method is a no-op returning nil when the notify socket is absent, so
// daemons run unchanged outside systemd (or wdsuper).
package sdnotify

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"time"
)

// EnvSocket is the environment variable naming the notify socket.
const EnvSocket = "NOTIFY_SOCKET"

// EnvWatchdogUsec is the environment variable carrying the supervisor's
// watchdog timeout in microseconds (systemd's WATCHDOG_USEC).
const EnvWatchdogUsec = "WATCHDOG_USEC"

// Notifier sends service-state datagrams to one notify socket. The zero
// value is a disabled notifier; construct with New or At. A Notifier is
// stateless and safe for concurrent use — each send opens, writes, and
// closes one unixgram connection, matching how short-lived sd_notify
// messages are sent in practice.
type Notifier struct {
	socket string
}

// New resolves the notify socket from $NOTIFY_SOCKET. When the variable is
// unset or empty the notifier is disabled and every send is a silent no-op.
func New() *Notifier { return At(os.Getenv(EnvSocket)) }

// At returns a notifier bound to an explicit socket path; tests and
// supervisors that own the socket use it. An empty path disables the
// notifier. A leading '@' names an abstract socket, per sd_notify(3).
func At(socket string) *Notifier { return &Notifier{socket: socket} }

// Enabled reports whether a notify socket is configured.
func (n *Notifier) Enabled() bool { return n != nil && n.socket != "" }

// Ready sends READY=1: the service has finished starting up.
func (n *Notifier) Ready() error { return n.send("READY=1") }

// Feed sends WATCHDOG=1, resetting the supervisor's watchdog timer.
func (n *Notifier) Feed() error { return n.send("WATCHDOG=1") }

// Stopping sends STOPPING=1: a deliberate shutdown has begun. Supervisors
// treat subsequent silence as orderly, not as a hang — this is the disarm
// half of the feed/disarm contract.
func (n *Notifier) Stopping() error { return n.send("STOPPING=1") }

// Trigger sends WATCHDOG=trigger: the service has concluded it cannot
// recover in-process and asks the supervisor to treat the watchdog as
// expired immediately.
func (n *Notifier) Trigger() error { return n.send("WATCHDOG=trigger") }

// Status sends a free-form STATUS= line for `systemctl status` output.
func (n *Notifier) Status(msg string) error { return n.send("STATUS=" + msg) }

// FeedInterval returns how often the service should feed: a third of the
// supervisor's advertised $WATCHDOG_USEC timeout (the sd_watchdog_enabled(3)
// recommendation), or fallback when the variable is unset, unparsable, or
// would feed slower than the fallback already does.
func (n *Notifier) FeedInterval(fallback time.Duration) time.Duration {
	usec, err := strconv.ParseInt(os.Getenv(EnvWatchdogUsec), 10, 64)
	if err != nil || usec <= 0 {
		return fallback
	}
	third := time.Duration(usec) * time.Microsecond / 3
	if third <= 0 || (fallback > 0 && third > fallback) {
		return fallback
	}
	return third
}

// send writes one state datagram. Disabled notifiers return nil; a present
// but unreachable socket returns the dial or write error so callers can log
// it (they must not escalate on it — notification is best-effort).
func (n *Notifier) send(state string) error {
	if !n.Enabled() {
		return nil
	}
	name := n.socket
	if name[0] == '@' {
		// Abstract-namespace socket: the kernel address starts with a NUL.
		name = "\x00" + name[1:]
	}
	conn, err := net.DialUnix("unixgram", nil, &net.UnixAddr{Name: name, Net: "unixgram"})
	if err != nil {
		return fmt.Errorf("sdnotify: dial %s: %w", n.socket, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(state)); err != nil {
		return fmt.Errorf("sdnotify: write %s: %w", n.socket, err)
	}
	return nil
}
