package sdnotify

import (
	"net"
	"path/filepath"
	"testing"
	"time"
)

// listen binds a fake supervisor-side unixgram socket and returns the path
// plus a channel of received datagrams.
func listen(t *testing.T) (string, <-chan string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "notify.sock")
	conn, err := net.ListenUnixgram("unixgram", &net.UnixAddr{Name: path, Net: "unixgram"})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	msgs := make(chan string, 64)
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				close(msgs)
				return
			}
			msgs <- string(buf[:n])
		}
	}()
	return path, msgs
}

func recvOne(t *testing.T, msgs <-chan string) string {
	t.Helper()
	select {
	case m := <-msgs:
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for a notify datagram")
		return ""
	}
}

func TestStates(t *testing.T) {
	path, msgs := listen(t)
	n := At(path)
	if !n.Enabled() {
		t.Fatal("notifier with a socket should be enabled")
	}
	steps := []struct {
		name string
		send func() error
		want string
	}{
		{"ready", n.Ready, "READY=1"},
		{"feed", n.Feed, "WATCHDOG=1"},
		{"trigger", n.Trigger, "WATCHDOG=trigger"},
		{"status", func() error { return n.Status("serving") }, "STATUS=serving"},
		{"stopping", n.Stopping, "STOPPING=1"},
	}
	for _, s := range steps {
		if err := s.send(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if got := recvOne(t, msgs); got != s.want {
			t.Fatalf("%s: sent %q, want %q", s.name, got, s.want)
		}
	}
}

// TestDisabledNoop: without NOTIFY_SOCKET every send is a silent success —
// daemons run unchanged outside systemd.
func TestDisabledNoop(t *testing.T) {
	t.Setenv(EnvSocket, "")
	n := New()
	if n.Enabled() {
		t.Fatal("notifier without a socket should be disabled")
	}
	for _, err := range []error{n.Ready(), n.Feed(), n.Stopping(), n.Trigger(), n.Status("x")} {
		if err != nil {
			t.Fatalf("disabled notifier returned %v", err)
		}
	}
	var nilNotifier *Notifier
	if nilNotifier.Enabled() {
		t.Fatal("nil notifier should report disabled")
	}
}

func TestNewFromEnv(t *testing.T) {
	path, msgs := listen(t)
	t.Setenv(EnvSocket, path)
	n := New()
	if err := n.Ready(); err != nil {
		t.Fatalf("ready: %v", err)
	}
	if got := recvOne(t, msgs); got != "READY=1" {
		t.Fatalf("got %q, want READY=1", got)
	}
}

// TestSendErrorSurfaces: a configured but dead socket reports the error so
// callers can log it (and nothing more).
func TestSendErrorSurfaces(t *testing.T) {
	n := At(filepath.Join(t.TempDir(), "gone.sock"))
	if err := n.Feed(); err == nil {
		t.Fatal("feed to a missing socket should error")
	}
}

func TestFeedInterval(t *testing.T) {
	n := At("x")
	t.Setenv(EnvWatchdogUsec, "")
	if got := n.FeedInterval(time.Second); got != time.Second {
		t.Fatalf("unset usec: got %v, want fallback 1s", got)
	}
	t.Setenv(EnvWatchdogUsec, "3000000") // 3s timeout -> feed every 1s
	if got := n.FeedInterval(5 * time.Second); got != time.Second {
		t.Fatalf("3s usec: got %v, want 1s", got)
	}
	// A supervisor timeout far above the check interval must not slow the
	// feed below the driver cadence.
	t.Setenv(EnvWatchdogUsec, "60000000")
	if got := n.FeedInterval(time.Second); got != time.Second {
		t.Fatalf("60s usec with 1s fallback: got %v, want 1s", got)
	}
	t.Setenv(EnvWatchdogUsec, "garbage")
	if got := n.FeedInterval(2 * time.Second); got != 2*time.Second {
		t.Fatalf("bad usec: got %v, want fallback", got)
	}
}
