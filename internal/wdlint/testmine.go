package wdlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"gowatchdog/internal/autowatchdog/testmine"
)

// TestMineAnalyzer polices checkers mined from test suites (awgen
// -from-tests). Generated registrations borrow their oracles from test
// assertions, so two properties must hold for the file to stay auditable and
// deployable:
//
//   - every d.Register call carries an awgen:from-test provenance header
//     naming the assertion it was mined from, and the referenced test file
//     still exists under the module root (a deleted test orphans the
//     checker's justification);
//   - the generated code references nothing declared only in the package's
//     _test.go files — test helpers are not compiled into deployments, so a
//     captured helper breaks the production build even though wdlint's own
//     loader (which skips test files) would not see it.
type TestMineAnalyzer struct{}

// Name implements Analyzer.
func (*TestMineAnalyzer) Name() string { return "testmine" }

// Doc implements Analyzer.
func (*TestMineAnalyzer) Doc() string {
	return "mined checker files must keep per-checker test provenance and capture no test-only helpers"
}

// Run implements Analyzer.
func (a *TestMineAnalyzer) Run(u *Unit) []Diag {
	var diags []Diag
	report := func(p *Package, pos token.Pos, sev Severity, format string, args ...any) {
		diags = append(diags, Diag{
			Pos:      p.Pos(pos),
			Analyzer: a.Name(),
			Severity: sev,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, p := range u.Pkgs {
		var testOnly map[string]bool // lazily computed per package
		for _, f := range p.Files {
			name := p.FileName[f]
			if !strings.HasSuffix(name, "_wd_gen.go") {
				continue
			}
			if directiveValue(p, f, testmine.GenModeDirective) != testmine.GenModeFromTests {
				continue
			}
			base := filepath.Base(name)

			// Collect the provenance headers: comment line -> referenced file.
			type provenance struct {
				pos  token.Pos
				file string
			}
			provByLine := make(map[int]provenance)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, testmine.FromTestDirective+" ")
					if !ok {
						continue
					}
					loc := strings.Fields(rest)
					ref := ""
					if len(loc) > 0 {
						// "<file>:<line>" — strip the line suffix.
						if i := strings.LastIndex(loc[0], ":"); i > 0 {
							ref = loc[0][:i]
						}
					}
					line := p.Pos(c.Pos()).Line
					provByLine[line] = provenance{pos: c.Pos(), file: ref}
					if ref == "" {
						report(p, c.Pos(), SevError,
							"%s: malformed %s header %q; want <file>:<line>", base, testmine.FromTestDirective, rest)
						continue
					}
					abs := filepath.Join(u.Loader.ModuleRoot, filepath.FromSlash(ref))
					if st, err := os.Stat(abs); err != nil || st.IsDir() {
						report(p, c.Pos(), SevWarn,
							"%s: provenance test file %q no longer exists; the mined checker's justification is orphaned — re-mine: go run ./cmd/awgen -from-tests -pkg %s -out %s -quiet",
							base, ref, directiveValue(p, f, testmine.GenSourceDirective), moduleRel(u, p.Dir))
					}
				}
			}

			// Every registration must sit under a provenance header. The
			// emitter puts the header two lines above the Register call
			// (directive, then the kind note); tolerate a little slack.
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Register" {
					return true
				}
				line := p.Pos(call.Pos()).Line
				found := false
				for l := line - 4; l < line; l++ {
					if _, ok := provByLine[l]; ok {
						found = true
						break
					}
				}
				if !found {
					report(p, call.Pos(), SevError,
						"%s: registration without an %s provenance header; mined checkers must name the assertion they came from",
						base, testmine.FromTestDirective)
				}
				return true
			})

			// No test-only captures: identifiers resolved from _test.go
			// declarations do not exist in the deployed build.
			if testOnly == nil {
				testOnly = testOnlyNames(p)
			}
			if len(testOnly) == 0 {
				continue
			}
			skip := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.SelectorExpr); ok {
					skip[s.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || skip[id] || id.Name == "_" {
					return true
				}
				if p.Info.Defs[id] != nil {
					return true // a declaration, not a use
				}
				if testOnly[id.Name] {
					report(p, id.Pos(), SevError,
						"%s: %q is declared only in this package's _test.go files; mined checkers must not capture test helpers",
						base, id.Name)
				}
				return true
			})
		}
	}
	return diags
}

// testOnlyNames returns the top-level names declared in the package's
// same-package _test.go files but not in its non-test files. The loader skips
// test files on purpose, so they are parsed here, purely syntactically.
func testOnlyNames(p *Package) map[string]bool {
	compiled := make(map[string]bool)
	for _, f := range p.Files {
		for _, name := range topLevelNames(f) {
			compiled[name] = true
		}
	}
	out := make(map[string]bool)
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		return out
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil || f.Name.Name != p.Name {
			continue // external test packages cannot leak into generated code
		}
		for _, n := range topLevelNames(f) {
			if !compiled[n] {
				out[n] = true
			}
		}
	}
	return out
}

// topLevelNames lists the package-scope names a file declares.
func topLevelNames(f *ast.File) []string {
	var out []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil && d.Name != nil {
				out = append(out, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					out = append(out, s.Name.Name)
				case *ast.ValueSpec:
					for _, n := range s.Names {
						out = append(out, n.Name)
					}
				}
			}
		}
	}
	return out
}
