// Package genfreshmovedsrc used to hold a reduced package; only this test
// straggler remains, so the directory exists but no longer compiles into
// anything awgen could re-analyze.
package genfreshmovedsrc

import "testing"

func TestLeftover(t *testing.T) {}
