// Package main feeds an external sd_notify watchdog by hand but honors the
// feed/disarm contract: Stopping runs on the shutdown path, so the analyzer
// stays quiet.
package main

import (
	"time"

	"gowatchdog/internal/sdnotify"
)

// GoodFeeder pets the watchdog while running and disarms it before returning.
func GoodFeeder(done <-chan struct{}) {
	n := sdnotify.New()
	_ = n.Ready()
	for {
		select {
		case <-done:
			_ = n.Stopping()
			return
		case <-time.After(time.Second):
			_ = n.Feed()
		}
	}
}

func main() {}
