// Package contextsyncbad violates §3.2 context synchronization: keys read
// that are never put, keys put that are never read, and a hook feeding a
// context no checker owns.
package contextsyncbad

import (
	"gowatchdog/internal/watchdog"
)

// Checkers builds the checker side.
func Checkers() []watchdog.Checker {
	return []watchdog.Checker{
		// Reads "missing", but the hook below only puts "wrong".
		watchdog.NewChecker("csb.reader", func(ctx *watchdog.Context) error {
			_ = ctx.GetString("missing") // want: never put
			return nil
		}),
		// Reads "k" and no hook synchronizes csb.orphan at all.
		watchdog.NewChecker("csb.orphan", func(ctx *watchdog.Context) error {
			_ = ctx.GetInt("k") // want: no hook for this context
			return nil
		}),
	}
}

// Hooks is the main-program side.
func Hooks(f *watchdog.Factory) {
	// Puts "wrong", which csb.reader never reads (info finding).
	f.Context("csb.reader").Put("wrong", 1)
	// Synchronizes a context no checker claims (warn finding).
	f.Context("csb.ghost").MarkReady()
}
