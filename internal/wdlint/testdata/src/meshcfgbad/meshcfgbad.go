// Package main hand-wires a cluster health plane inside a deployment
// package — the runtimecfg analyzer demands mesh-enabled mains join through
// wdruntime (WithMesh or the -wd-peers flag set) so digest sourcing, verdict
// journaling, and shutdown ordering come from the shared lifecycle.
package main

import (
	"gowatchdog/internal/wdmesh"
)

// BadMeshWire builds the mesh directly in a command package. // want: wdruntime
func BadMeshWire(tr wdmesh.Transport) (*wdmesh.Mesh, error) {
	return wdmesh.New(wdmesh.Config{
		Self:      "n1",
		Peers:     []string{"n2", "n3"},
		Transport: tr,
		Source:    func() wdmesh.Digest { return wdmesh.Digest{Healthy: true} },
	})
}

// BespokeMeshWire keeps a hand-built mesh with an explicit justification; the
// ignore directive suppresses the finding.
func BespokeMeshWire(tr wdmesh.Transport) (*wdmesh.Mesh, error) {
	//wdlint:ignore runtimecfg standalone mesh probe, no runtime lifecycle
	return wdmesh.New(wdmesh.Config{
		Self:      "probe",
		Peers:     []string{"n2"},
		Transport: tr,
		Source:    func() wdmesh.Digest { return wdmesh.Digest{Healthy: true} },
	})
}

func main() {}
