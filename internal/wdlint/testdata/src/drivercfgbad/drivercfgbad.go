// Package drivercfgbad misconfigures the driver: zeroed deadlines, a
// non-positive threshold, a nil validator, and a duplicate registration.
package drivercfgbad

import (
	"gowatchdog/internal/watchdog"
)

// Wire registers checkers with every misconfiguration the drivercfg
// analyzer detects.
func Wire(d *watchdog.Driver) {
	d.Register(watchdog.NewChecker("cfg.a", func(ctx *watchdog.Context) error { return nil }),
		watchdog.Timeout(0),        // want: zero timeout
		watchdog.Threshold(0),      // want: zero threshold
		watchdog.ValidateWith(nil), // want: nil validator
	)
	d.Register(watchdog.NewChecker("cfg.b", func(ctx *watchdog.Context) error { return nil }),
		watchdog.Every(0), // want: zero interval
	)
	d.Register(watchdog.NewChecker("cfg.a", // want: duplicate name
		func(ctx *watchdog.Context) error { return nil }))
}

// SinklessStart constructs and starts a driver whose reports go nowhere:
// no listener, no observer, no polling, and the variable never leaves the
// function. Every detection would be computed and dropped.
func SinklessStart() {
	d := watchdog.New() // want: no report sink
	d.Register(watchdog.NewChecker("cfg.sinkless",
		func(ctx *watchdog.Context) error { return nil }))
	d.Start()
	defer d.Stop()
}

// PolledDriver is the legitimate pull-style counterpart: no push sink, but
// the caller polls verdicts on demand, so no finding.
func PolledDriver() bool {
	d := watchdog.New()
	d.Register(watchdog.NewChecker("cfg.polled",
		func(ctx *watchdog.Context) error { return nil }))
	d.Start()
	defer d.Stop()
	return d.Healthy()
}

// EscapingDriver hands the driver to another component, which may wire the
// sink itself; the analyzer must stay quiet.
func EscapingDriver(install func(*watchdog.Driver)) {
	d := watchdog.New()
	install(d)
	d.Start()
	defer d.Stop()
}
