// Package drivercfgbad misconfigures the driver: zeroed deadlines, a
// non-positive threshold, a nil validator, and a duplicate registration.
package drivercfgbad

import (
	"gowatchdog/internal/watchdog"
)

// Wire registers checkers with every misconfiguration the drivercfg
// analyzer detects.
func Wire(d *watchdog.Driver) {
	d.Register(watchdog.NewChecker("cfg.a", func(ctx *watchdog.Context) error { return nil }),
		watchdog.Timeout(0),        // want: zero timeout
		watchdog.Threshold(0),      // want: zero threshold
		watchdog.ValidateWith(nil), // want: nil validator
	)
	d.Register(watchdog.NewChecker("cfg.b", func(ctx *watchdog.Context) error { return nil }),
		watchdog.Every(0), // want: zero interval
	)
	d.Register(watchdog.NewChecker("cfg.a", // want: duplicate name
		func(ctx *watchdog.Context) error { return nil }))
}
