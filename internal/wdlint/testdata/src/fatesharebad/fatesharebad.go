// Package fatesharebad performs vulnerable operations in a checker without
// the watchdog.Op wrapper (§3.3): a hang in them would take down the whole
// watchdog un-pinpointed.
package fatesharebad

import (
	"net"
	"os"

	"gowatchdog/internal/watchdog"
)

// Checkers builds one flagged and one properly wrapped checker.
func Checkers() []watchdog.Checker {
	return []watchdog.Checker{
		watchdog.NewChecker("fs.raw", func(ctx *watchdog.Context) error {
			if err := os.WriteFile("/tmp/probe", []byte("x"), 0o644); err != nil { // want: raw write
				return err
			}
			if _, err := net.Dial("tcp", "localhost:1"); err != nil { // want: raw dial
				return err
			}
			// Predicates are not vulnerable operations.
			_ = os.IsNotExist(nil)
			return nil
		}),
		watchdog.NewChecker("fs.wrapped", func(ctx *watchdog.Context) error {
			return watchdog.Op(ctx, watchdog.Site{Function: "fs", Op: "os.WriteFile"}, func() error {
				return os.WriteFile("/tmp/probe", []byte("x"), 0o644) // wrapped: allowed
			})
		}),
	}
}
