// Package main hand-wires a watchdog driver inside a deployment package —
// the runtimecfg analyzer demands such packages compose their stack through
// wdruntime.New so flag parity, hardening, and shutdown ordering stay
// uniform across daemons.
package main

import (
	"gowatchdog/internal/watchdog"
)

// BadWire constructs the driver directly in a command package. // want: wdruntime.New
func BadWire() *watchdog.Driver {
	d := watchdog.New(
		watchdog.WithInterval(1000000000),
	)
	d.OnReport(func(watchdog.Report) {})
	return d
}

// BespokeWire keeps a hand-built driver with an explicit justification; the
// ignore directive suppresses the finding.
func BespokeWire() *watchdog.Driver {
	//wdlint:ignore runtimecfg bespoke single-checker probe, no lifecycle needed
	d := watchdog.New()
	d.OnReport(func(watchdog.Report) {})
	return d
}

func main() {}
