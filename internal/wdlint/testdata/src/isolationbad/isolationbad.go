// Package isolationbad violates §3.2 checker isolation in every way the
// isolation analyzer knows about. Each violation is labeled; the lone
// allowed pattern (a plain closure accumulator) is labeled too.
package isolationbad

import (
	"gowatchdog/internal/watchdog"
)

var globalCount int

var alerts = make(chan string, 1)

var shared = struct{ last string }{}

// Node is main-program state a Check method must not touch.
type Node struct {
	state int
	seen  map[string]bool
}

// Name names the method checker.
func (n *Node) Name() string { return "iso.method" }

// Check mutates the receiver: violation.
func (n *Node) Check(ctx *watchdog.Context) error {
	n.state++              // want: receiver write
	n.seen["probe"] = true // want: receiver path write
	return nil
}

// BadCheckers builds one closure checker per violation class.
func BadCheckers() []watchdog.Checker {
	cache := map[string]int{} // pre-exists the checker closures below
	var out []watchdog.Checker
	out = append(out, watchdog.NewChecker("iso.global", func(ctx *watchdog.Context) error {
		globalCount = 1 // want: package-level write
		return nil
	}))
	out = append(out, watchdog.NewChecker("iso.captured", func(ctx *watchdog.Context) error {
		cache["k"] = 1 // want: path write through captured map
		return nil
	}))
	out = append(out, watchdog.NewChecker("iso.chan", func(ctx *watchdog.Context) error {
		alerts <- "down" // want: send on shared channel
		return nil
	}))
	out = append(out, watchdog.NewChecker("iso.ownctx", func(ctx *watchdog.Context) error {
		ctx.Put("k", 1) // want: own-context write
		return nil
	}))
	out = append(out, watchdog.NewChecker("iso.sharedpath", func(ctx *watchdog.Context) error {
		shared.last = "x" // want: package-level path write
		return nil
	}))
	out = append(out, watchdog.NewChecker("iso.callee", func(ctx *watchdog.Context) error {
		bumpGlobal() // callee writes a package-level variable
		return nil
	}))
	// Allowed: an accumulator rebound by plain assignment is checker-private
	// state carried across invocations.
	last := 0
	out = append(out, watchdog.NewChecker("iso.ok", func(ctx *watchdog.Context) error {
		local := last + 1
		last = local
		return nil
	}))
	return out
}

// bumpGlobal is reachable from iso.callee and mutates package state.
func bumpGlobal() {
	globalCount++ // want: package-level write in callee
}
