package testminebad

import "testing"

// testFloor is a test-only helper; generated checkers must never capture it.
func testFloor() int { return 0 }

func TestWidgetDepth(t *testing.T) {
	w := &Widget{}
	if w.Depth() < testFloor() {
		t.Fatalf("Depth() = %d, want >= %d", w.Depth(), testFloor())
	}
}
