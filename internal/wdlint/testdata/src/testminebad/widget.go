// Package testminebad is the TestMineAnalyzer fixture: a mined checkers file
// with one clean registration, one missing its provenance header, one
// capturing a test-only helper, and one whose provenance test file is gone.
package testminebad

// Widget is the exported subject the fixture checkers probe.
type Widget struct {
	depth int
}

// Depth returns the current depth.
func (w *Widget) Depth() int { return w.depth }
