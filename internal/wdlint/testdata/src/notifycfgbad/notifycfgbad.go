// Package main hand-feeds an external sd_notify watchdog without ever
// disarming it — the runtimecfg analyzer demands a Stopping call somewhere in
// any deployment package that feeds by hand, so a clean shutdown cannot be
// mistaken for a hang by the supervisor.
package main

import (
	"time"

	"gowatchdog/internal/sdnotify"
)

// BadFeeder pets the external watchdog in a loop and then just returns; the
// supervisor's timer keeps running and fires a spurious restart. // want: Stopping
func BadFeeder(done <-chan struct{}) {
	n := sdnotify.New()
	_ = n.Ready()
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second):
			_ = n.Feed()
		}
	}
}

// BespokeFeeder documents why its feed has no package-local disarm: the
// ignore directive suppresses the finding.
func BespokeFeeder(n *sdnotify.Notifier) {
	//wdlint:ignore runtimecfg disarm happens in the caller's shutdown hook
	_ = n.Feed()
}

func main() {}
