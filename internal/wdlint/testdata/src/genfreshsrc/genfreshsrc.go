// Package genfreshsrc is the reduction source for the genfresh fixture: one
// long-running region with one vulnerable operation.
package genfreshsrc

import "os"

// Run loops forever writing a heartbeat file.
func Run() {
	for {
		_ = os.WriteFile("heartbeat", []byte("x"), 0o644)
	}
}
