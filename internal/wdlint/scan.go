package wdlint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// watchdogPath matches the watchdog core package by import-path suffix so the
// analyzers work on this module and on fixtures alike.
const watchdogPath = "/watchdog"

// isWatchdogPkg reports whether pkg is the watchdog core package.
func isWatchdogPkg(pkg *types.Package) bool {
	return pkg != nil &&
		(pkg.Path() == "watchdog" || strings.HasSuffix(pkg.Path(), watchdogPath))
}

// watchdogFunc returns the watchdog-package function name called by e
// ("NewChecker", "Op", ...), or "" if e is not a watchdog call.
func watchdogFunc(p *Package, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || !isWatchdogPkg(pn.Imported()) {
		return ""
	}
	return sel.Sel.Name
}

// meshPath matches the wdmesh package by import-path suffix so the analyzers
// work on this module and on fixtures alike.
const meshPath = "/wdmesh"

// isMeshPkg reports whether pkg is the cluster-health-plane package.
func isMeshPkg(pkg *types.Package) bool {
	return pkg != nil &&
		(pkg.Path() == "wdmesh" || strings.HasSuffix(pkg.Path(), meshPath))
}

// meshFunc returns the wdmesh-package function name called by e ("New",
// "ListenTCP", ...), or "" if e is not a wdmesh call.
func meshFunc(p *Package, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || !isMeshPkg(pn.Imported()) {
		return ""
	}
	return sel.Sel.Name
}

// sdnotifyPath matches the sd_notify client package by import-path suffix so
// the analyzer works on this module and on fixtures alike.
const sdnotifyPath = "/sdnotify"

// isSdnotifyPkg reports whether pkg is the sd_notify client package.
func isSdnotifyPkg(pkg *types.Package) bool {
	return pkg != nil &&
		(pkg.Path() == "sdnotify" || strings.HasSuffix(pkg.Path(), sdnotifyPath))
}

// sdnotifyMethod returns the sdnotify.Notifier method name called by e
// ("Feed", "Stopping", ...), or "" if e is not a Notifier method call.
func sdnotifyMethod(p *Package, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Notifier" || !isSdnotifyPkg(named.Obj().Pkg()) {
		return ""
	}
	return sel.Sel.Name
}

// constString returns the constant string value of e, if any.
func constString(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		// Fall back to a bare literal: placeholder imports can leave
		// expressions untyped.
		if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				return s, true
			}
		}
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// CheckerBody is one discovered checker implementation: the function that the
// driver will invoke with a *watchdog.Context.
type CheckerBody struct {
	Pkg *Package
	// Name is the statically-known checker name, or "" when the name is
	// computed at run time.
	Name string
	// NamePos is where the checker is introduced (the NewChecker call, the
	// CheckFunc literal, or the Check method declaration).
	NamePos token.Pos
	// Fn is the checker function literal; nil when the checker is a declared
	// function or method (see Decl).
	Fn *ast.FuncLit
	// Decl is the declared checker function or Check method; nil for
	// literals.
	Decl *ast.FuncDecl
	// Body is the checker function body.
	Body *ast.BlockStmt
	// CtxObj is the *watchdog.Context parameter object; nil when the
	// parameter is unnamed.
	CtxObj types.Object
	// RecvObj is the receiver object for Check methods; nil otherwise.
	RecvObj types.Object
}

// Span returns the source extent of the checker function.
func (c *CheckerBody) Span() (token.Pos, token.Pos) {
	if c.Fn != nil {
		return c.Fn.Pos(), c.Fn.End()
	}
	return c.Decl.Pos(), c.Decl.End()
}

// Checkers discovers checker bodies in the requested packages, memoized.
func (u *Unit) Checkers() []*CheckerBody {
	if u.checkers != nil {
		return u.checkers
	}
	u.checkers = []*CheckerBody{}
	for _, p := range u.Pkgs {
		u.checkers = append(u.checkers, scanCheckers(p)...)
	}
	return u.checkers
}

// scanCheckers finds every checker introduced in p:
//
//   - watchdog.NewChecker(name, fn) calls,
//   - watchdog.CheckFunc{CheckerName: ..., Fn: ...} composite literals,
//   - Check(ctx *watchdog.Context) error methods on local types.
func scanCheckers(p *Package) []*CheckerBody {
	var out []*CheckerBody
	funcDecls := declIndex(p)
	seen := make(map[*ast.BlockStmt]bool)
	add := func(c *CheckerBody) {
		if c.Body != nil && !seen[c.Body] {
			seen[c.Body] = true
			out = append(out, c)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if watchdogFunc(p, n.Fun) != "NewChecker" || len(n.Args) != 2 {
					return true
				}
				c := &CheckerBody{Pkg: p, NamePos: n.Pos()}
				c.Name, _ = constString(p, n.Args[0])
				fillCheckerFunc(p, c, n.Args[1], funcDecls)
				add(c)
			case *ast.CompositeLit:
				if !isCheckFuncType(p, n.Type) {
					return true
				}
				c := &CheckerBody{Pkg: p, NamePos: n.Pos()}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					switch key, _ := kv.Key.(*ast.Ident); key.Name {
					case "CheckerName":
						c.Name, _ = constString(p, kv.Value)
					case "Fn":
						fillCheckerFunc(p, c, kv.Value, funcDecls)
					}
				}
				add(c)
			case *ast.FuncDecl:
				if n.Name.Name != "Check" || n.Recv == nil || n.Body == nil {
					return true
				}
				ctxObj, ok := contextParam(p, n.Type)
				if !ok {
					return true
				}
				c := &CheckerBody{
					Pkg:     p,
					NamePos: n.Pos(),
					Decl:    n,
					Body:    n.Body,
					CtxObj:  ctxObj,
					Name:    methodCheckerName(p, n, funcDecls),
				}
				if len(n.Recv.List[0].Names) > 0 {
					c.RecvObj = p.Info.Defs[n.Recv.List[0].Names[0]]
				}
				add(c)
			}
			return true
		})
	}
	return out
}

// fillCheckerFunc resolves the Fn expression of a checker to its body: either
// a function literal or a reference to a declared same-package function.
func fillCheckerFunc(p *Package, c *CheckerBody, fn ast.Expr, decls map[types.Object]*ast.FuncDecl) {
	switch fn := fn.(type) {
	case *ast.FuncLit:
		c.Fn = fn
		c.Body = fn.Body
		if ctxObj, ok := contextParam(p, fn.Type); ok {
			c.CtxObj = ctxObj
		}
	case *ast.Ident:
		if d := decls[p.Info.Uses[fn]]; d != nil && d.Body != nil {
			c.Decl = d
			c.Body = d.Body
			if ctxObj, ok := contextParam(p, d.Type); ok {
				c.CtxObj = ctxObj
			}
		}
	}
}

// contextParam reports whether ft is a checker signature — exactly one
// parameter of type *watchdog.Context — and returns the parameter object
// (nil when unnamed).
func contextParam(p *Package, ft *ast.FuncType) (types.Object, bool) {
	if ft.Params == nil || len(ft.Params.List) != 1 {
		return nil, false
	}
	field := ft.Params.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return nil, false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		// Same-package references (inside the watchdog package itself) are
		// out of scope: the core is trusted.
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); !ok || !isWatchdogPkg(pn.Imported()) {
		return nil, false
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return nil, true
	}
	return p.Info.Defs[field.Names[0]], true
}

// isCheckFuncType reports whether t denotes watchdog.CheckFunc.
func isCheckFuncType(p *Package, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "CheckFunc" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && isWatchdogPkg(pn.Imported())
}

// methodCheckerName extracts the checker name for a Check method by looking
// for a sibling Name method that returns a single constant string.
func methodCheckerName(p *Package, check *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) string {
	recvType := receiverTypeName(check)
	if recvType == "" {
		return ""
	}
	for _, d := range decls {
		if d.Name.Name != "Name" || d.Recv == nil || d.Body == nil {
			continue
		}
		if receiverTypeName(d) != recvType || len(d.Body.List) != 1 {
			continue
		}
		ret, ok := d.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		if s, ok := constString(p, ret.Results[0]); ok {
			return s
		}
	}
	return ""
}

// receiverTypeName returns the base type name of a method receiver.
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// declIndex maps function objects to their declarations for one package.
func declIndex(p *Package) map[types.Object]*ast.FuncDecl {
	idx := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// opBodies returns the bodies of function literals passed to watchdog.Op and
// watchdog.OpTimed within root: code inside them is sanctioned to perform
// vulnerable operations (the wrapper pinpoints and confines them, §3.3).
func opBodies(p *Package, root ast.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := watchdogFunc(p, call.Fun)
		if name != "Op" && name != "OpTimed" {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, lit.Body)
			}
		}
		return true
	})
	return out
}

// insideAny reports whether pos falls within any of the given blocks.
func insideAny(pos token.Pos, blocks []*ast.BlockStmt) bool {
	for _, b := range blocks {
		if b.Pos() <= pos && pos < b.End() {
			return true
		}
	}
	return false
}

// rootIdent unwraps selector/index/star/paren chains to the base identifier
// of an lvalue or channel expression: for `a.b[i].c`, the identifier `a`.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isDirect reports whether e is the identifier itself (possibly
// parenthesized), as opposed to a path through it.
func isDirect(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return true
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// useOf resolves an identifier to its object via Uses or Defs.
func useOf(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// isPackageLevel reports whether obj is a package-level variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
