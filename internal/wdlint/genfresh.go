package wdlint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"gowatchdog/internal/autowatchdog"
)

// GenFreshAnalyzer re-runs the AutoWatchdog reduction (§4) for every
// committed *_wd_gen.go file in the analyzed packages and flags files that
// drifted from the current generator output. The source package is recovered
// from the file's provenance header:
//
//	// awgen:source <module-relative-dir>
//
// which awgen emits into every generated file. A generated file without the
// header, or whose source directory no longer exists, gets a warning: its
// freshness cannot be verified.
//
// The comparison uses awgen's default configuration (DefaultPatterns,
// default chain depth). Files generated with custom -entries or patterns
// should carry a //wdlint:ignore genfresh directive explaining the
// configuration.
type GenFreshAnalyzer struct{}

// Name implements Analyzer.
func (*GenFreshAnalyzer) Name() string { return "genfresh" }

// Doc implements Analyzer.
func (*GenFreshAnalyzer) Doc() string {
	return "*_wd_gen.go files must match the current AutoWatchdog reduction (§4)"
}

// Run implements Analyzer.
func (a *GenFreshAnalyzer) Run(u *Unit) []Diag {
	var diags []Diag
	report := func(p *Package, pos token.Pos, sev Severity, format string, args ...any) {
		diags = append(diags, Diag{
			Pos:      p.Pos(pos),
			Analyzer: a.Name(),
			Severity: sev,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			name := p.FileName[f]
			if !strings.HasSuffix(name, "_wd_gen.go") {
				continue
			}
			src := sourceDirective(p, f)
			if src == "" {
				report(p, f.Pos(), SevWarn,
					"%s has no %q header; its freshness cannot be verified — regenerate it with the current awgen",
					filepath.Base(name), autowatchdog.GenSourceDirective)
				continue
			}
			srcDir := filepath.Join(u.Loader.ModuleRoot, filepath.FromSlash(src))
			if st, err := os.Stat(srcDir); err != nil || !st.IsDir() {
				report(p, f.Pos(), SevWarn,
					"%s claims source %q, which does not exist under the module root", filepath.Base(name), src)
				continue
			}
			analysis, err := autowatchdog.Analyze(autowatchdog.Config{PackageDir: srcDir})
			if err != nil {
				report(p, f.Pos(), SevWarn,
					"%s: re-analyzing source %q failed: %v", filepath.Base(name), src, err)
				continue
			}
			committed, err := os.ReadFile(name)
			if err != nil {
				report(p, f.Pos(), SevWarn, "%s: %v", filepath.Base(name), err)
				continue
			}
			if !bytes.Equal(analysis.GeneratedSource(), committed) {
				report(p, f.Pos(), SevError,
					"%s drifted from the current reduction of %s; regenerate: go run ./cmd/awgen -pkg %s -out %s -quiet",
					filepath.Base(name), src, src, moduleRel(u, p.Dir))
			}
		}
	}
	return diags
}

// sourceDirective extracts the awgen:source value from a file's comments.
func sourceDirective(p *Package, f *ast.File) string {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, autowatchdog.GenSourceDirective+" "); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// moduleRel renders dir relative to the module root for regen hints.
func moduleRel(u *Unit, dir string) string {
	rel, err := filepath.Rel(u.Loader.ModuleRoot, dir)
	if err != nil {
		return dir
	}
	return filepath.ToSlash(rel)
}
