package wdlint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"gowatchdog/internal/autowatchdog"
	"gowatchdog/internal/autowatchdog/testmine"
)

// GenFreshAnalyzer re-runs the AutoWatchdog generator for every committed
// *_wd_gen.go file in the analyzed packages and flags files that drifted from
// the current generator output. The source package is recovered from the
// file's provenance header:
//
//	// awgen:source <module-relative-dir>
//
// which awgen emits into every generated file, and the generator to re-run is
// selected by the mode header:
//
//	// awgen:mode from-tests
//
// dispatches to the test-suite miner (§4, testmine); files without a mode
// header predate it and replay the mainline region reduction. A generated
// file without a source header, whose source directory no longer exists, or
// whose source directory no longer holds a compilable package (the package
// moved out from under the header) gets a warning: its freshness cannot be
// verified.
//
// The comparison uses the generator's default configuration. Files generated
// with custom -entries or patterns should carry a //wdlint:ignore genfresh
// directive explaining the configuration.
type GenFreshAnalyzer struct{}

// Name implements Analyzer.
func (*GenFreshAnalyzer) Name() string { return "genfresh" }

// Doc implements Analyzer.
func (*GenFreshAnalyzer) Doc() string {
	return "*_wd_gen.go files must match the current AutoWatchdog generator output (§4)"
}

// Run implements Analyzer.
func (a *GenFreshAnalyzer) Run(u *Unit) []Diag {
	var diags []Diag
	report := func(p *Package, pos token.Pos, sev Severity, format string, args ...any) {
		diags = append(diags, Diag{
			Pos:      p.Pos(pos),
			Analyzer: a.Name(),
			Severity: sev,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			name := p.FileName[f]
			if !strings.HasSuffix(name, "_wd_gen.go") {
				continue
			}
			src := directiveValue(p, f, autowatchdog.GenSourceDirective)
			if src == "" {
				report(p, f.Pos(), SevWarn,
					"%s has no %q header; its freshness cannot be verified — regenerate it with the current awgen",
					filepath.Base(name), autowatchdog.GenSourceDirective)
				continue
			}
			srcDir := filepath.Join(u.Loader.ModuleRoot, filepath.FromSlash(src))
			if st, err := os.Stat(srcDir); err != nil || !st.IsDir() {
				report(p, f.Pos(), SevWarn,
					"%s claims source %q, which does not exist under the module root", filepath.Base(name), src)
				continue
			}
			if !hasGoFiles(srcDir) {
				report(p, f.Pos(), SevWarn,
					"%s claims source %q, which no longer holds a compilable package — the source moved; regenerate against its new location",
					filepath.Base(name), src)
				continue
			}

			var fresh []byte
			var regenHint string
			if directiveValue(p, f, testmine.GenModeDirective) == testmine.GenModeFromTests {
				analysis, err := testmine.Mine(testmine.Config{PackageDir: srcDir})
				if err != nil {
					report(p, f.Pos(), SevWarn,
						"%s: re-mining source %q failed: %v", filepath.Base(name), src, err)
					continue
				}
				fresh = analysis.GeneratedSource()
				regenHint = fmt.Sprintf("go run ./cmd/awgen -from-tests -pkg %s -out %s -quiet",
					src, moduleRel(u, p.Dir))
			} else {
				analysis, err := autowatchdog.Analyze(autowatchdog.Config{PackageDir: srcDir})
				if err != nil {
					report(p, f.Pos(), SevWarn,
						"%s: re-analyzing source %q failed: %v", filepath.Base(name), src, err)
					continue
				}
				fresh = analysis.GeneratedSource()
				regenHint = fmt.Sprintf("go run ./cmd/awgen -pkg %s -out %s -quiet",
					src, moduleRel(u, p.Dir))
			}
			committed, err := os.ReadFile(name)
			if err != nil {
				report(p, f.Pos(), SevWarn, "%s: %v", filepath.Base(name), err)
				continue
			}
			if !bytes.Equal(fresh, committed) {
				report(p, f.Pos(), SevError,
					"%s drifted from the current generator output for %s; regenerate: %s",
					filepath.Base(name), src, regenHint)
			}
		}
	}
	return diags
}

// directiveValue extracts the value of a "// <directive> <value>" comment
// from a file, or "" if absent.
func directiveValue(p *Package, f *ast.File, directive string) string {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, directive+" "); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// moduleRel renders dir relative to the module root for regen hints.
func moduleRel(u *Unit, dir string) string {
	rel, err := filepath.Rel(u.Loader.ModuleRoot, dir)
	if err != nil {
		return dir
	}
	return filepath.ToSlash(rel)
}
