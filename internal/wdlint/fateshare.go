package wdlint

import (
	"fmt"
	"go/ast"
	"go/types"

	"gowatchdog/internal/autowatchdog"
)

// FateShareAnalyzer enforces §3.3: vulnerable operations inside checker
// bodies must run under watchdog.Op (or OpTimed) so that a hang or crash is
// pinpointed to a site, localized to the checker, and confined by the
// driver's timeout instead of fate-sharing with the whole watchdog.
//
// A "vulnerable operation" is a direct call into the os, net, syscall, or
// io/ioutil packages whose method name appears in the AutoWatchdog
// vulnerable-call vocabulary (autowatchdog.DefaultPatterns): Write, Read,
// Stat, Open, Dial, and friends. Pure predicates on those packages
// (os.IsNotExist, net.JoinHostPort, ...) do not match the vocabulary and are
// never flagged. Calls routed through the wdio shadow filesystem or the
// wdruntime mimics are the sanctioned alternative and are likewise ignored.
type FateShareAnalyzer struct{}

// Name implements Analyzer.
func (*FateShareAnalyzer) Name() string { return "fateshare" }

// Doc implements Analyzer.
func (*FateShareAnalyzer) Doc() string {
	return "vulnerable operations in checkers must run under watchdog.Op (§3.3)"
}

// rawPackages are the packages whose vulnerable calls must be wrapped.
var rawPackages = map[string]bool{
	"os":        true,
	"net":       true,
	"syscall":   true,
	"io/ioutil": true,
}

// Run implements Analyzer.
func (a *FateShareAnalyzer) Run(u *Unit) []Diag {
	vocab := make(map[string]bool)
	for _, pat := range autowatchdog.DefaultPatterns() {
		vocab[pat.Method] = true
	}
	var diags []Diag
	for _, c := range u.Checkers() {
		p := c.Pkg
		covered := opBodies(p, c.Body)
		ast.Inspect(c.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || !rawPackages[pn.Imported().Path()] {
				return true
			}
			if !vocab[sel.Sel.Name] {
				return true
			}
			if insideAny(call.Pos(), covered) {
				return true
			}
			diags = append(diags, Diag{
				Pos:      p.Pos(call.Pos()),
				Analyzer: a.Name(),
				Severity: SevError,
				Message: fmt.Sprintf(
					"checker %s calls %s.%s outside watchdog.Op; a hang here fate-shares with the watchdog instead of being pinpointed (§3.3)",
					checkerLabel(c), pn.Imported().Path(), sel.Sel.Name),
			})
			return true
		})
	}
	return diags
}
