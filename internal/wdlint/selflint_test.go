package wdlint

import "testing"

// TestSelfLint keeps the repository's own watchdog deployments honest: the
// coordination service, the DFS DataNode, the KV store, the committed
// AutoWatchdog output, the campaign layer, and the runtime layer itself must
// produce no finding at warn or above (after justified //wdlint:ignore
// directives). Info findings are expected — contexts legitimately carry
// report payload keys no checker reads (§5.2).
func TestSelfLint(t *testing.T) {
	diags, err := Run(".", []string{
		"../coord",
		"../dfs",
		"../kvs",
		"../kvsload",
		"../autowatchdog/genexample",
		"../autowatchdog/testmine",
		"../campaign",
		"../campaign/meshscale",
		"../wdruntime",
		"../wdmesh",
		"../wdmesh/wire",
		"../sdnotify",
		"../supervise",
	}, All())
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, d := range diags {
		if d.Severity >= SevWarn {
			bad++
			t.Errorf("self-lint: %s", d)
		} else {
			t.Logf("info: %s", d)
		}
	}
	if bad > 0 {
		t.Fatalf("%d watchdog hygiene violation(s) in the tree", bad)
	}
}
