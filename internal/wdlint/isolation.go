package wdlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// IsolationAnalyzer enforces §3.2's "watchdogs should not incur side effects
// to the main program state". A checker may freely mutate state it creates
// itself — locals, and accumulators rebound across invocations via plain
// assignment to closure variables — but it must not:
//
//   - write package-level variables,
//   - mutate state reachable through the receiver of a Check method,
//   - write *through* a variable captured from an enclosing function
//     (selector, index, or pointer paths reach objects that pre-exist the
//     checker and may be shared with the main program),
//   - send on captured or package-level channels,
//   - write its own context (Put/PutAll/MarkReady/Invalidate): context
//     synchronization is strictly one-way, hook → checker.
//
// Intra-package functions called from a checker (up to a small depth) are
// also scanned, but only for package-level writes: deeper aliasing is out of
// reach for a syntactic checker.
type IsolationAnalyzer struct{}

// Name implements Analyzer.
func (*IsolationAnalyzer) Name() string { return "isolation" }

// Doc implements Analyzer.
func (*IsolationAnalyzer) Doc() string {
	return "checkers must not mutate state shared with the main program (§3.2)"
}

// ctxWriteMethods are Context methods that mutate watchdog state; checkers
// must never call them on their own context.
var ctxWriteMethods = map[string]bool{
	"Put": true, "PutAll": true, "MarkReady": true, "Invalidate": true,
	"Replicate": true,
}

// calleeDepth bounds the intra-package call-chain walk from checker bodies.
const calleeDepth = 3

// Run implements Analyzer.
func (a *IsolationAnalyzer) Run(u *Unit) []Diag {
	var diags []Diag
	// Callee findings can be reached from several checkers; report each
	// write site once.
	calleeSeen := make(map[string]bool)
	for _, c := range u.Checkers() {
		diags = append(diags, a.checkBody(c)...)
		decls := declIndex(c.Pkg)
		for _, callee := range reachableDecls(c.Pkg, c.Body, decls, calleeDepth) {
			for _, d := range a.checkCallee(c, callee) {
				key := fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
				if !calleeSeen[key] {
					calleeSeen[key] = true
					diags = append(diags, d)
				}
			}
		}
	}
	return diags
}

// checkBody scans one checker function body.
func (a *IsolationAnalyzer) checkBody(c *CheckerBody) []Diag {
	p := c.Pkg
	from, to := c.Span()
	var diags []Diag
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diag{
			Pos:      p.Pos(pos),
			Analyzer: a.Name(),
			Severity: SevError,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// classify determines whether writing through e violates isolation.
	classify := func(e ast.Expr, verb string) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := useOf(p, root)
		if obj == nil {
			return
		}
		switch {
		case isPackageLevel(obj):
			report(e.Pos(), "checker %s package-level variable %q; checkers must be side-effect free (§3.2)",
				verb, root.Name)
		case c.RecvObj != nil && obj == c.RecvObj:
			report(e.Pos(), "checker %s state through receiver %q; mimic checkers must not mutate the main program's structures (§3.2)",
				verb, root.Name)
		case !isDirect(e) && capturedBy(obj, from, to):
			report(e.Pos(), "checker %s through captured variable %q; the target pre-exists the checker and may be shared with the main program (§3.2)",
				verb, root.Name)
		}
	}
	ast.Inspect(c.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				classify(lhs, "writes")
			}
		case *ast.IncDecStmt:
			classify(n.X, "writes")
		case *ast.SendStmt:
			root := rootIdent(n.Chan)
			if root == nil {
				return true
			}
			obj := useOf(p, root)
			if obj == nil {
				return true
			}
			if isPackageLevel(obj) || capturedBy(obj, from, to) ||
				(c.RecvObj != nil && obj == c.RecvObj) {
				report(n.Pos(), "checker sends on channel %q shared with the main program (§3.2)", root.Name)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !ctxWriteMethods[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || c.CtxObj == nil || useOf(p, id) != c.CtxObj {
				return true
			}
			report(n.Pos(), "checker calls %s on its own context; synchronization is one-way, hook → checker (§3.2)",
				sel.Sel.Name)
		}
		return true
	})
	return diags
}

// checkCallee scans a same-package function reachable from a checker for
// package-level writes only.
func (a *IsolationAnalyzer) checkCallee(c *CheckerBody, callee *ast.FuncDecl) []Diag {
	p := c.Pkg
	var diags []Diag
	report := func(pos token.Pos, name string) {
		diags = append(diags, Diag{
			Pos:      p.Pos(pos),
			Analyzer: a.Name(),
			Severity: SevError,
			Message: fmt.Sprintf("function %s, called from checker %s, writes package-level variable %q (§3.2)",
				callee.Name.Name, checkerLabel(c), name),
			Related: []Related{{Pos: p.Pos(c.NamePos), Message: "checker defined here"}},
		})
	}
	ast.Inspect(callee.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			targets = n.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{n.X}
		default:
			return true
		}
		for _, t := range targets {
			root := rootIdent(t)
			if root == nil {
				continue
			}
			if obj := useOf(p, root); obj != nil && isPackageLevel(obj) {
				report(t.Pos(), root.Name)
			}
		}
		return true
	})
	return diags
}

// capturedBy reports whether obj is a variable declared outside the
// [from, to) span (and not at package level — that case is reported
// separately).
func capturedBy(obj types.Object, from, to token.Pos) bool {
	v, ok := obj.(*types.Var)
	if !ok || isPackageLevel(v) || !v.Pos().IsValid() {
		return false
	}
	return v.Pos() < from || v.Pos() >= to
}

// reachableDecls returns same-package function declarations reachable from
// root through direct calls, up to depth levels.
func reachableDecls(p *Package, root ast.Node, decls map[types.Object]*ast.FuncDecl, depth int) []*ast.FuncDecl {
	seen := make(map[*ast.FuncDecl]bool)
	var out []*ast.FuncDecl
	var walk func(n ast.Node, d int)
	walk = func(n ast.Node, d int) {
		if d <= 0 {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = p.Info.Uses[fun]
			case *ast.SelectorExpr:
				obj = p.Info.Uses[fun.Sel]
			}
			if fd := decls[obj]; fd != nil && fd.Body != nil && !seen[fd] {
				seen[fd] = true
				out = append(out, fd)
				walk(fd.Body, d-1)
			}
			return true
		})
	}
	walk(root, depth)
	return out
}

// checkerLabel names a checker for diagnostics.
func checkerLabel(c *CheckerBody) string {
	if c.Name != "" {
		return fmt.Sprintf("%q", c.Name)
	}
	return "(unnamed)"
}
