package wdlint

import (
	"fmt"
	"go/ast"
	"strings"
)

// RuntimeCfgAnalyzer enforces the single-wiring-surface rule: deployment
// packages — commands (package main) and the fault-campaign layer — must
// compose their watchdog stack through wdruntime.New instead of constructing
// the driver directly with watchdog.New. Hand-wired drivers in those packages
// drift from the production lifecycle (flag parity, hardening options,
// journal/obs shutdown ordering), which is exactly the divergence the paper's
// §3 uniform-deployment argument warns about. Library and test code may still
// build bare drivers; a deliberately bespoke deployment driver can carry a
// `//wdlint:ignore runtimecfg <reason>` directive.
//
// It also enforces the sd_notify feed/disarm contract: a deployment package
// that feeds an external watchdog by hand (sdnotify.Notifier.Feed) without
// ever disarming it (Stopping) leaves clean shutdowns indistinguishable from
// hangs — the supervisor's timer keeps running after the last feed and fires
// a spurious restart. wdruntime's feed loop disarms on Drain automatically;
// bespoke feeders must do the same.
type RuntimeCfgAnalyzer struct{}

// Name implements Analyzer.
func (*RuntimeCfgAnalyzer) Name() string { return "runtimecfg" }

// Doc implements Analyzer.
func (*RuntimeCfgAnalyzer) Doc() string {
	return "daemons and campaign targets must wire watchdogs through wdruntime"
}

// deploymentScope reports whether p is a package whose watchdog wiring ships
// to production: a command (package main) or the campaign layer that scores
// the production stack.
func deploymentScope(p *Package) bool {
	return p.Name == "main" || strings.Contains(p.ImportPath, "/campaign")
}

// Run implements Analyzer.
func (a *RuntimeCfgAnalyzer) Run(u *Unit) []Diag {
	var diags []Diag
	for _, p := range u.Pkgs {
		if !deploymentScope(p) {
			continue
		}
		// Feed/disarm is a package-level contract: collect every hand-rolled
		// Feed site, then check that a Stopping call exists somewhere in the
		// same package.
		var feeds []ast.Node
		stops := false
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if watchdogFunc(p, call.Fun) == "New" {
					diags = append(diags, Diag{
						Pos:      p.Pos(call.Pos()),
						Analyzer: a.Name(),
						Severity: SevWarn,
						Message: fmt.Sprintf(
							"deployment package %s constructs the driver with watchdog.New; compose the stack through wdruntime.New so flags, hardening, and shutdown ordering stay uniform (//wdlint:ignore runtimecfg to keep a bespoke driver)",
							p.ImportPath),
					})
				}
				if meshFunc(p, call.Fun) == "New" {
					diags = append(diags, Diag{
						Pos:      p.Pos(call.Pos()),
						Analyzer: a.Name(),
						Severity: SevWarn,
						Message: fmt.Sprintf(
							"deployment package %s constructs the cluster health plane with wdmesh.New; join the mesh through wdruntime (WithMesh or the -wd-peers flags) so digests, journaling, and shutdown ordering stay wired (//wdlint:ignore runtimecfg to keep a bespoke mesh)",
							p.ImportPath),
					})
				}
				switch sdnotifyMethod(p, call.Fun) {
				case "Feed":
					feeds = append(feeds, call)
				case "Stopping":
					stops = true
				}
				return true
			})
		}
		if !stops {
			for _, feed := range feeds {
				diags = append(diags, Diag{
					Pos:      p.Pos(feed.Pos()),
					Analyzer: a.Name(),
					Severity: SevWarn,
					Message: fmt.Sprintf(
						"deployment package %s feeds sd_notify (Notifier.Feed) but never disarms it (Notifier.Stopping); a clean shutdown will look like a hang and trigger a spurious restart — disarm before exiting, or feed through wdruntime's loop which disarms on Drain (//wdlint:ignore runtimecfg for a feeder with its own disarm path)",
						p.ImportPath),
				})
			}
		}
	}
	return diags
}
