package wdlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package. Type checking is
// tolerant: in-module imports are resolved from source, everything else
// (the standard library included) is satisfied with empty placeholder
// packages, so Info is always populated but individual expressions may lack
// type information. Analyzers must degrade gracefully when they do.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Name is the declared package name.
	Name string
	// Fset is the file set shared across every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// FileName maps each parsed file back to its absolute path.
	FileName map[*ast.File]string
	// Types is the (possibly incomplete) type-checked package.
	Types *types.Package
	// Info holds the use/def/selection maps produced by type checking.
	Info *types.Info
	// TypeErrors are the tolerated type-checking errors, kept for debugging.
	TypeErrors []error
}

// Pos converts a token.Pos into a Position using the shared file set.
func (p *Package) Pos(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Loader loads packages of a single Go module for analysis. It memoizes by
// import path so shared dependencies (e.g. the watchdog core) are parsed and
// type-checked once per run.
type Loader struct {
	fset *token.FileSet
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	pkgs         map[string]*Package       // by import path
	placeholders map[string]*types.Package // non-module imports
	loading      map[string]bool           // cycle guard
}

// NewLoader locates the module enclosing startDir and returns a loader for
// it.
func NewLoader(startDir string) (*Loader, error) {
	abs, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	dir := abs
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			mp := modulePath(data)
			if mp == "" {
				return nil, fmt.Errorf("wdlint: no module path in %s/go.mod", dir)
			}
			return &Loader{
				fset:         token.NewFileSet(),
				ModuleRoot:   dir,
				ModulePath:   mp,
				pkgs:         make(map[string]*Package),
				placeholders: make(map[string]*types.Package),
				loading:      make(map[string]bool),
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("wdlint: no go.mod found above %s", abs)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Expand resolves command-line package patterns into directories. A pattern
// ending in "/..." walks the tree below it (skipping testdata, vendor, and
// hidden directories); other patterns name single directories. Only
// directories containing non-test Go files are returned.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if abs, err := filepath.Abs(dir); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("wdlint: expand %q: %w", pat, err)
			}
			continue
		}
		if !hasGoFiles(pat) {
			return nil, fmt.Errorf("wdlint: %s contains no Go files", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("wdlint: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// load loads the package with the given in-module import path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wdlint: %w", err)
	}
	p := &Package{
		Dir:        dir,
		ImportPath: path,
		Fset:       l.fset,
		FileName:   make(map[*ast.File]string),
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("wdlint: parse %s: %w", full, err)
		}
		// Tolerate stray files of a different package (e.g. goldens or
		// generated leftovers) by keeping only the majority package, which
		// is the first one seen: Go packages are one-per-directory.
		if p.Name == "" {
			p.Name = f.Name.Name
		}
		if f.Name.Name != p.Name {
			continue
		}
		p.Files = append(p.Files, f)
		p.FileName[f] = full
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("wdlint: no Go files in %s", dir)
	}

	l.loading[path] = true
	defer delete(l.loading, path)

	imp := &moduleImporter{l: l}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
		// Keep going on missing imports: placeholders make most of the
		// standard library opaque on purpose.
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
	}
	p.Types, _ = cfg.Check(path, l.fset, p.Files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

// Loaded returns every package loaded so far (requested or as an in-module
// dependency), sorted by import path.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// moduleImporter resolves in-module imports by recursively loading them from
// source and satisfies everything else with a named, empty placeholder. The
// placeholder is marked complete so references through it fail as ordinary
// (tolerated) type errors rather than aborting the check.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		if !l.loading[path] {
			if p, err := l.load(path); err == nil && p.Types != nil {
				return p.Types, nil
			}
		}
		// Import cycle or unloadable sibling: fall through to a placeholder.
	}
	if pkg, ok := l.placeholders[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	// "go-foo" style elements and version suffixes never occur in std; the
	// base element is the package name for every import this repo uses.
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	l.placeholders[path] = pkg
	return pkg, nil
}
