package wdlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ContextSyncAnalyzer cross-references the context keys checkers read against
// the keys hooks synchronize (§3.2's one-way context synchronization).
//
//   - A key a checker reads that no hook ever puts is an error: the checker
//     will forever see the zero value and silently verify nothing.
//   - A key hooks put that no checker reads is info: contexts also carry
//     payload for failure reports (§5.2), so this is often intentional.
//   - A hook that synchronizes a context no checker claims is a warning —
//     usually a renamed checker left a stale hook behind.
//
// Sync sites are found three ways: direct Context("name").Put/PutAll chains,
// context variables bound from Context("name") earlier in the same function,
// and calls to hook-like helpers — any function (in any loaded package) that
// forwards a name parameter and a values parameter into
// Context(name).PutAll(vals), such as wdhooks.Capture or a store's
// sampledHook(name, seq, build) with a lazily-built payload.
//
// Checkers whose name is computed at run time are skipped. A checker that
// passes its context to another function (other than watchdog.Op/OpTimed) is
// treated as reading unknown keys and exempted from key matching.
type ContextSyncAnalyzer struct{}

// Name implements Analyzer.
func (*ContextSyncAnalyzer) Name() string { return "contextsync" }

// Doc implements Analyzer.
func (*ContextSyncAnalyzer) Doc() string {
	return "context keys read by checkers must be synchronized by hooks, and vice versa (§3.2)"
}

// hookInfo describes a hook-like function: its name-parameter index and
// values-parameter index.
type hookInfo struct {
	nameIdx int
	valsIdx int
	// builder marks the values parameter as a func-returning-map builder
	// rather than the map itself.
	builder bool
}

// syncRecord aggregates everything hooks do for one context name.
type syncRecord struct {
	name     string
	keys     map[string]token.Position // key -> first sync position
	wildcard bool                      // some site put keys we cannot enumerate
	sites    []token.Position          // every site, for related info
}

// readRecord aggregates everything checkers named `name` read.
type readRecord struct {
	name     string
	keys     map[string]token.Position // key -> first read position
	wildcard bool                      // context escaped to an opaque callee
	checker  *CheckerBody
}

// Run implements Analyzer.
func (a *ContextSyncAnalyzer) Run(u *Unit) []Diag {
	hooks := findHookLike(u)
	syncs := collectSyncSites(u, hooks)
	reads := collectReads(u)

	var diags []Diag
	report := func(pos token.Position, sev Severity, related []Related, format string, args ...any) {
		diags = append(diags, Diag{
			Pos:      pos,
			Analyzer: a.Name(),
			Severity: sev,
			Message:  fmt.Sprintf(format, args...),
			Related:  related,
		})
	}

	// Checker side: every key read must be synchronized somewhere.
	for _, r := range sortedReads(reads) {
		if r.wildcard {
			continue
		}
		s := syncs[r.name]
		for _, key := range sortedKeys(r.keys) {
			pos := r.keys[key]
			switch {
			case s == nil:
				if len(r.keys) > 0 {
					report(pos, SevError, nil,
						"checker %q reads context key %q but no hook synchronizes context %q (§3.2 one-way sync)",
						r.name, key, r.name)
				}
			case !s.wildcard && !hasKey(s.keys, key):
				related := []Related{}
				if len(s.sites) > 0 {
					related = append(related, Related{Pos: s.sites[0], Message: "context synchronized here"})
				}
				report(pos, SevError, related,
					"checker %q reads context key %q, which no hook for %q ever puts",
					r.name, key, r.name)
			}
		}
	}

	// Hook side: every synchronized key should have a reader, and every
	// synchronized context should have a checker.
	for _, s := range sortedSyncs(syncs) {
		r := reads[s.name]
		if r == nil {
			if len(s.sites) > 0 {
				report(s.sites[0], SevWarn, nil,
					"hook synchronizes context %q but no checker with that name was found", s.name)
			}
			continue
		}
		if r.wildcard {
			continue
		}
		for _, key := range sortedKeys(s.keys) {
			if !hasKey(r.keys, key) {
				report(s.keys[key], SevInfo, nil,
					"context key %q is synchronized for checker %q but never read by it; report payload (§5.2)?",
					key, s.name)
			}
		}
	}
	return diags
}

// findHookLike scans every loaded package for hook-like functions.
func findHookLike(u *Unit) map[types.Object]hookInfo {
	hooks := make(map[types.Object]hookInfo)
	for _, p := range u.Loader.Loaded() {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if info, ok := hookShape(p, fd); ok {
					if obj := p.Info.Defs[fd.Name]; obj != nil {
						hooks[obj] = info
					}
				}
			}
		}
	}
	return hooks
}

// hookShape reports whether fd forwards a (name, vals) parameter pair into
// Context(name).PutAll(vals) — possibly via a builder call vals().
func hookShape(p *Package, fd *ast.FuncDecl) (hookInfo, bool) {
	params := paramObjects(p, fd.Type)
	if len(params) < 2 {
		return hookInfo{}, false
	}
	index := func(obj types.Object) int {
		for i, po := range params {
			if po != nil && po == obj {
				return i
			}
		}
		return -1
	}
	var found hookInfo
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, okc := n.(*ast.CallExpr)
		if !okc || ok {
			return !ok
		}
		sel, okc := call.Fun.(*ast.SelectorExpr)
		if !okc || sel.Sel.Name != "PutAll" || len(call.Args) != 1 {
			return true
		}
		// Receiver must be Context(nameParam).
		inner, okc := sel.X.(*ast.CallExpr)
		if !okc || len(inner.Args) != 1 {
			return true
		}
		innerSel, okc := inner.Fun.(*ast.SelectorExpr)
		if !okc || innerSel.Sel.Name != "Context" {
			return true
		}
		nameID, okc := inner.Args[0].(*ast.Ident)
		if !okc {
			return true
		}
		ni := index(useOf(p, nameID))
		if ni < 0 {
			return true
		}
		switch arg := call.Args[0].(type) {
		case *ast.Ident:
			if vi := index(useOf(p, arg)); vi >= 0 {
				found = hookInfo{nameIdx: ni, valsIdx: vi}
				ok = true
			}
		case *ast.CallExpr:
			if id, okc := arg.Fun.(*ast.Ident); okc && len(arg.Args) == 0 {
				if vi := index(useOf(p, id)); vi >= 0 {
					found = hookInfo{nameIdx: ni, valsIdx: vi, builder: true}
					ok = true
				}
			}
		}
		return !ok
	})
	return found, ok
}

// paramObjects flattens the parameter objects of a function type in
// declaration order.
func paramObjects(p *Package, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, p.Info.Defs[name])
		}
	}
	return out
}

// collectSyncSites gathers hook-side synchronization in the requested
// packages, skipping checker bodies (a checker writing its own context is
// isolation's finding, not a sync site).
func collectSyncSites(u *Unit, hooks map[types.Object]hookInfo) map[string]*syncRecord {
	syncs := make(map[string]*syncRecord)
	checkerSpans := make(map[*Package][][2]token.Pos)
	for _, c := range u.Checkers() {
		from, to := c.Span()
		checkerSpans[c.Pkg] = append(checkerSpans[c.Pkg], [2]token.Pos{from, to})
	}
	inChecker := func(p *Package, pos token.Pos) bool {
		for _, span := range checkerSpans[p] {
			if span[0] <= pos && pos < span[1] {
				return true
			}
		}
		return false
	}
	record := func(p *Package, name string, pos token.Pos, keys []string, wildcard bool) {
		s := syncs[name]
		if s == nil {
			s = &syncRecord{name: name, keys: make(map[string]token.Position)}
			syncs[name] = s
		}
		position := p.Pos(pos)
		s.sites = append(s.sites, position)
		if wildcard {
			s.wildcard = true
		}
		for _, k := range keys {
			if !hasKey(s.keys, k) {
				s.keys[k] = position
			}
		}
	}

	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// bindings tracks context variables bound from
				// X.Context("name") within this function.
				bindings := make(map[types.Object]string)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for i, rhs := range n.Rhs {
							if i >= len(n.Lhs) {
								break
							}
							name, ok := contextCallName(p, rhs)
							if !ok {
								continue
							}
							if id, okl := n.Lhs[i].(*ast.Ident); okl {
								if obj := useOf(p, id); obj != nil {
									bindings[obj] = name
								}
							}
						}
					case *ast.CallExpr:
						if inChecker(p, n.Pos()) {
							return true
						}
						// Hook-like helper call.
						if obj := calleeObject(p, n); obj != nil {
							if h, okh := hooks[obj]; okh {
								if h.nameIdx < len(n.Args) && h.valsIdx < len(n.Args) {
									if name, okn := constString(p, n.Args[h.nameIdx]); okn {
										keys, wildcard := valsKeys(p, n.Args[h.valsIdx], h.builder)
										record(p, name, n.Pos(), keys, wildcard)
									}
								}
								return true
							}
						}
						// Direct Put/PutAll/MarkReady on a context.
						sel, oks := n.Fun.(*ast.SelectorExpr)
						if !oks {
							return true
						}
						method := sel.Sel.Name
						if method != "Put" && method != "PutAll" && method != "MarkReady" {
							return true
						}
						name, okn := contextCallName(p, sel.X)
						if !okn {
							if id, oki := sel.X.(*ast.Ident); oki {
								name, okn = bindings[useOf(p, id)], false
								if name != "" {
									okn = true
								}
							}
						}
						if !okn {
							return true
						}
						switch method {
						case "Put":
							if len(n.Args) >= 1 {
								if key, okk := constString(p, n.Args[0]); okk {
									record(p, name, n.Pos(), []string{key}, false)
								} else {
									record(p, name, n.Pos(), nil, true)
								}
							}
						case "PutAll":
							if len(n.Args) == 1 {
								keys, wildcard := valsKeys(p, n.Args[0], false)
								record(p, name, n.Pos(), keys, wildcard)
							}
						case "MarkReady":
							record(p, name, n.Pos(), nil, false)
						}
					}
					return true
				})
			}
		}
	}
	return syncs
}

// contextCallName matches e against X.Context("name") where Context is the
// watchdog factory method, returning the constant name.
func contextCallName(p *Package, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return "", false
	}
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); !ok || !isWatchdogPkg(fn.Pkg()) {
		return "", false
	}
	return constString(p, call.Args[0])
}

// calleeObject resolves the called function/method object of a call.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// valsKeys extracts the constant string keys of a values argument: a map
// composite literal, or (builder form) a func literal returning one.
// wildcard is true when the keys cannot be enumerated.
func valsKeys(p *Package, arg ast.Expr, builder bool) (keys []string, wildcard bool) {
	if builder {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			return nil, true
		}
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			found = true
			ks, wc := valsKeys(p, ret.Results[0], false)
			keys = append(keys, ks...)
			wildcard = wildcard || wc
			return true
		})
		if !found {
			return nil, true
		}
		return keys, wildcard
	}
	cl, ok := arg.(*ast.CompositeLit)
	if !ok {
		return nil, true
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil, true
		}
		key, ok := constString(p, kv.Key)
		if !ok {
			wildcard = true
			continue
		}
		keys = append(keys, key)
	}
	return keys, wildcard
}

// collectReads gathers the context keys each named checker reads.
func collectReads(u *Unit) map[string]*readRecord {
	reads := make(map[string]*readRecord)
	for _, c := range u.Checkers() {
		if c.Name == "" || c.CtxObj == nil {
			continue
		}
		r := reads[c.Name]
		if r == nil {
			r = &readRecord{name: c.Name, keys: make(map[string]token.Position), checker: c}
			reads[c.Name] = r
		}
		p := c.Pkg
		ast.Inspect(c.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// ctx.GetX("key") reads.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && useOf(p, id) == c.CtxObj {
					switch sel.Sel.Name {
					case "Get", "GetString", "GetBytes", "GetInt":
						if len(call.Args) == 1 {
							if key, ok := constString(p, call.Args[0]); ok {
								if !hasKey(r.keys, key) {
									r.keys[key] = p.Pos(call.Args[0].Pos())
								}
								return true
							}
						}
						r.wildcard = true
					case "Snapshot", "Version", "Ready", "LastOp", "CurrentOp",
						"EnterOp", "ExitOp":
						// Metadata accessors, not key reads.
					default:
						// Unknown use of the context object.
					}
					return true
				}
			}
			// ctx escaping to an opaque callee means unknown reads —
			// except watchdog.Op/OpTimed, which only manage op tracking.
			name := watchdogFunc(p, call.Fun)
			if name == "Op" || name == "OpTimed" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && useOf(p, id) == c.CtxObj {
					r.wildcard = true
				}
			}
			return true
		})
	}
	return reads
}

func hasKey(m map[string]token.Position, k string) bool {
	_, ok := m[k]
	return ok
}

func sortedKeys(m map[string]token.Position) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedReads(m map[string]*readRecord) []*readRecord {
	out := make([]*readRecord, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func sortedSyncs(m map[string]*syncRecord) []*syncRecord {
	out := make([]*syncRecord, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
