// Package wdlint statically verifies watchdog hygiene across a Go module.
//
// The watchdog abstraction (§3 of the paper) only delivers its guarantees —
// side-effect isolation, accurate hang pinpointing, synchronized contexts —
// when checker code follows a handful of conventions that the compiler does
// not enforce. wdlint closes that gap with seven analyzers:
//
//	isolation   checkers must not mutate state shared with the main program
//	            (§3.2: "watchdogs should not incur side effects")
//	contextsync every context key a checker reads must be synchronized by a
//	            hook somewhere, and vice versa (§3.2 one-way sync)
//	fateshare   vulnerable operations inside checkers must run under
//	            watchdog.Op so hangs are pinpointed and confined (§3.3)
//	drivercfg   checker registrations need sane timeouts/thresholds
//	runtimecfg  deployment packages (commands, the campaign layer) must
//	            compose the stack through wdruntime, not bare watchdog.New
//	            or hand-wired wdmesh.New
//	genfresh    *_wd_gen.go files must match the current AutoWatchdog
//	            generator output (§4), whichever mode produced them
//	testmine    checkers mined from test suites (awgen -from-tests) must
//	            keep per-checker provenance headers and capture no
//	            test-only helpers
//
// Findings can be suppressed with a comment directive:
//
//	//wdlint:ignore <analyzer> [reason]
//
// placed on (or immediately above) the offending line, or in the doc comment
// of the enclosing function to suppress the analyzer for the whole function.
package wdlint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity ranks a finding.
type Severity int

const (
	// SevInfo marks observations that are often intentional (e.g. context
	// keys synchronized for report payloads but never read by a checker).
	SevInfo Severity = iota
	// SevWarn marks likely mistakes that do not break the abstraction.
	SevWarn
	// SevError marks violations of the watchdog contract.
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ParseSeverity converts a name ("info", "warn", "error") to a Severity.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return SevInfo, nil
	case "warn", "warning":
		return SevWarn, nil
	case "error":
		return SevError, nil
	}
	return SevInfo, fmt.Errorf("wdlint: unknown severity %q", name)
}

// Related points at a secondary location that explains a finding (e.g. the
// hook that synchronizes a key, or the declaration of a mutated variable).
type Related struct {
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

// Diag is one finding.
type Diag struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Severity Severity       `json:"severity"`
	Message  string         `json:"message"`
	Related  []Related      `json:"related,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", d.Pos, d.Severity, d.Analyzer, d.Message)
}

// Analyzer is one wdlint check.
type Analyzer interface {
	// Name is the short identifier used in output and ignore directives.
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Run analyzes the unit and returns findings.
	Run(u *Unit) []Diag
}

// Unit is the shared input handed to every analyzer: the loader (for its
// module metadata and transitively loaded packages) plus the packages the
// user asked to lint. Analyzers report only on Pkgs but may consult
// everything the loader has seen — contextsync, for example, matches checker
// reads in one package against hook sites in another.
type Unit struct {
	Loader *Loader
	// Pkgs are the requested packages, sorted by import path.
	Pkgs []*Package

	checkers []*CheckerBody // lazily discovered, see Checkers()
}

// All returns the builtin analyzers in their canonical order.
func All() []Analyzer {
	return []Analyzer{
		&IsolationAnalyzer{},
		&ContextSyncAnalyzer{},
		&FateShareAnalyzer{},
		&DriverCfgAnalyzer{},
		&RuntimeCfgAnalyzer{},
		&GenFreshAnalyzer{},
		&TestMineAnalyzer{},
	}
}

// Run loads the packages matched by patterns (relative to dir), runs the
// analyzers over them, filters findings through //wdlint:ignore directives,
// and returns the remainder sorted by position.
func Run(dir string, patterns []string, analyzers []Analyzer) ([]Diag, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	u := &Unit{Loader: loader}
	for _, d := range dirs {
		p, err := loader.LoadDir(d)
		if err != nil {
			return nil, err
		}
		u.Pkgs = append(u.Pkgs, p)
	}
	var diags []Diag
	for _, a := range analyzers {
		diags = append(diags, a.Run(u)...)
	}
	diags = filterIgnored(u, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// MarshalDiags renders findings as indented JSON (an array, never null).
// Each finding carries a flat "location" field in file:line:col form next to
// the structured position, so line-oriented consumers (CI annotators, editor
// integrations) need no position reassembly.
func MarshalDiags(diags []Diag) ([]byte, error) {
	type diagJSON struct {
		Diag
		Location string `json:"location"`
	}
	out := make([]diagJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagJSON{Diag: d, Location: d.Pos.String()})
	}
	return json.MarshalIndent(out, "", "  ")
}

// ignoreDirective is a parsed //wdlint:ignore comment.
type ignoreDirective struct {
	analyzer string // "" means all analyzers
	line     int    // line the directive comment is on
	funcFrom int    // if >0, suppress the whole [funcFrom, funcTo] line range
	funcTo   int
	file     string
}

// matches reports whether the directive suppresses d.
func (ig ignoreDirective) matches(d Diag) bool {
	if ig.file != d.Pos.Filename {
		return false
	}
	if ig.analyzer != "" && ig.analyzer != d.Analyzer {
		return false
	}
	if ig.funcFrom > 0 {
		return d.Pos.Line >= ig.funcFrom && d.Pos.Line <= ig.funcTo
	}
	return d.Pos.Line == ig.line || d.Pos.Line == ig.line+1
}

// filterIgnored drops findings suppressed by //wdlint:ignore directives in
// the analyzed packages.
func filterIgnored(u *Unit, diags []Diag) []Diag {
	var directives []ignoreDirective
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			fname := p.FileName[f]
			// Doc-comment directives suppress their whole function body.
			funcRange := make(map[*ast.CommentGroup][2]int)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Doc != nil {
					from := p.Pos(fd.Pos()).Line
					to := p.Pos(fd.End()).Line
					funcRange[fd.Doc] = [2]int{from, to}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//wdlint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					ig := ignoreDirective{
						file: fname,
						line: p.Pos(c.Pos()).Line,
					}
					if len(fields) > 0 {
						ig.analyzer = fields[0]
					}
					if r, ok := funcRange[cg]; ok {
						ig.funcFrom, ig.funcTo = r[0], r[1]
					}
					directives = append(directives, ig)
				}
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range directives {
			if ig.matches(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
