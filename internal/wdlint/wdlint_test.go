package wdlint

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// lint runs one analyzer over a fixture package under testdata/src.
func lint(t *testing.T, a Analyzer, fixture string) []Diag {
	t.Helper()
	diags, err := Run(".", []string{filepath.Join("testdata", "src", fixture)}, []Analyzer{a})
	if err != nil {
		t.Fatalf("Run(%s): %v", fixture, err)
	}
	return diags
}

// wantDiag asserts exactly one finding contains every substring, returning it.
func wantDiag(t *testing.T, diags []Diag, subs ...string) Diag {
	t.Helper()
	var hits []Diag
outer:
	for _, d := range diags {
		for _, sub := range subs {
			if !strings.Contains(d.Message, sub) {
				continue outer
			}
		}
		hits = append(hits, d)
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly one finding containing %q, got %d:\n%s", subs, len(hits), render(diags))
	}
	return hits[0]
}

func render(diags []Diag) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestIsolationFixture(t *testing.T) {
	diags := lint(t, &IsolationAnalyzer{}, "isolationbad")
	recv := 0
	for _, d := range diags {
		if strings.Contains(d.Message, `receiver "n"`) {
			recv++
		}
	}
	// n.state++ and n.seen[...] are two distinct receiver writes.
	if recv != 2 {
		t.Errorf("want 2 receiver findings, got %d:\n%s", recv, render(diags))
	}
	wantDiag(t, diags, "package-level variable \"globalCount\"; checkers")
	wantDiag(t, diags, "captured variable \"cache\"")
	wantDiag(t, diags, "channel \"alerts\"")
	wantDiag(t, diags, "Put on its own context")
	wantDiag(t, diags, "package-level variable \"shared\"")
	wantDiag(t, diags, "function bumpGlobal, called from checker")
	for _, d := range diags {
		if d.Severity != SevError {
			t.Errorf("isolation finding below error: %s", d)
		}
		// The plain closure accumulator must not be flagged.
		if strings.Contains(d.Message, `"last"`) || strings.Contains(d.Message, `"local"`) {
			t.Errorf("accumulator falsely flagged: %s", d)
		}
	}
	// Receiver path write (n.seen[...]) is reported separately from n.state.
	if n := len(diags); n != 8 {
		t.Errorf("want 8 isolation findings, got %d:\n%s", n, render(diags))
	}
}

func TestContextSyncFixture(t *testing.T) {
	diags := lint(t, &ContextSyncAnalyzer{}, "contextsyncbad")
	d := wantDiag(t, diags, `"csb.reader" reads context key "missing"`, "ever puts")
	if d.Severity != SevError {
		t.Errorf("read-never-put severity = %s", d.Severity)
	}
	d = wantDiag(t, diags, `"csb.orphan" reads context key "k"`, "no hook synchronizes")
	if d.Severity != SevError {
		t.Errorf("no-hook severity = %s", d.Severity)
	}
	d = wantDiag(t, diags, `key "wrong" is synchronized`, "never read")
	if d.Severity != SevInfo {
		t.Errorf("synced-never-read severity = %s", d.Severity)
	}
	d = wantDiag(t, diags, `"csb.ghost"`, "no checker")
	if d.Severity != SevWarn {
		t.Errorf("ghost-context severity = %s", d.Severity)
	}
	if n := len(diags); n != 4 {
		t.Errorf("want 4 contextsync findings, got %d:\n%s", n, render(diags))
	}
}

func TestFateShareFixture(t *testing.T) {
	diags := lint(t, &FateShareAnalyzer{}, "fatesharebad")
	wantDiag(t, diags, `"fs.raw"`, "os.WriteFile outside watchdog.Op")
	wantDiag(t, diags, `"fs.raw"`, "net.Dial outside watchdog.Op")
	for _, d := range diags {
		if strings.Contains(d.Message, "fs.wrapped") {
			t.Errorf("wrapped operation falsely flagged: %s", d)
		}
	}
	if n := len(diags); n != 2 {
		t.Errorf("want 2 fateshare findings, got %d:\n%s", n, render(diags))
	}
}

func TestDriverCfgFixture(t *testing.T) {
	diags := lint(t, &DriverCfgAnalyzer{}, "drivercfgbad")
	wantDiag(t, diags, "watchdog.Timeout(0)")
	wantDiag(t, diags, "watchdog.Every(0)")
	wantDiag(t, diags, "Threshold(0)")
	wantDiag(t, diags, "ValidateWith(nil)")
	wantDiag(t, diags, `"cfg.a" is already registered`)
	d := wantDiag(t, diags, "no report sink is wired")
	if d.Severity != SevWarn {
		t.Errorf("sinkless-driver severity = %s, want warn", d.Severity)
	}
	if n := len(diags); n != 6 {
		t.Errorf("want 6 drivercfg findings, got %d:\n%s", n, render(diags))
	}
}

func TestRuntimeCfgFixture(t *testing.T) {
	diags := lint(t, &RuntimeCfgAnalyzer{}, "runtimecfgbad")
	d := wantDiag(t, diags, "watchdog.New", "wdruntime.New")
	if d.Severity != SevWarn {
		t.Errorf("runtimecfg severity = %s, want warn", d.Severity)
	}
	// The second construction carries //wdlint:ignore runtimecfg; only the
	// bare one may surface.
	if n := len(diags); n != 1 {
		t.Errorf("want 1 runtimecfg finding, got %d:\n%s", n, render(diags))
	}
}

// TestRuntimeCfgMeshFixture: a deployment package building the cluster
// health plane with wdmesh.New bypasses the shared lifecycle; joining must go
// through wdruntime. The second construction carries an ignore directive.
func TestRuntimeCfgMeshFixture(t *testing.T) {
	diags := lint(t, &RuntimeCfgAnalyzer{}, "meshcfgbad")
	d := wantDiag(t, diags, "wdmesh.New", "wdruntime", "-wd-peers")
	if d.Severity != SevWarn {
		t.Errorf("mesh runtimecfg severity = %s, want warn", d.Severity)
	}
	if n := len(diags); n != 1 {
		t.Errorf("want 1 mesh runtimecfg finding, got %d:\n%s", n, render(diags))
	}
}

// TestRuntimeCfgNotifyFixture: a deployment package feeding sd_notify by hand
// without a Stopping call anywhere leaves clean shutdowns indistinguishable
// from hangs. The second feeder carries an ignore directive.
func TestRuntimeCfgNotifyFixture(t *testing.T) {
	diags := lint(t, &RuntimeCfgAnalyzer{}, "notifycfgbad")
	d := wantDiag(t, diags, "Notifier.Feed", "Notifier.Stopping", "spurious restart")
	if d.Severity != SevWarn {
		t.Errorf("notify runtimecfg severity = %s, want warn", d.Severity)
	}
	if n := len(diags); n != 1 {
		t.Errorf("want 1 notify runtimecfg finding, got %d:\n%s", n, render(diags))
	}
}

// TestRuntimeCfgNotifyDisarmed: a hand feeder whose package also calls
// Stopping honors the contract and produces no findings.
func TestRuntimeCfgNotifyDisarmed(t *testing.T) {
	diags := lint(t, &RuntimeCfgAnalyzer{}, "notifycfggood")
	if len(diags) != 0 {
		t.Errorf("runtimecfg flagged a feeder with a disarm path:\n%s", render(diags))
	}
}

// TestRuntimeCfgScope: library packages may build bare drivers — only
// commands and the campaign layer are deployment scope.
func TestRuntimeCfgScope(t *testing.T) {
	diags := lint(t, &RuntimeCfgAnalyzer{}, "drivercfgbad")
	if len(diags) != 0 {
		t.Errorf("runtimecfg flagged a non-deployment package:\n%s", render(diags))
	}
}

func TestGenFreshFixture(t *testing.T) {
	diags := lint(t, &GenFreshAnalyzer{}, "genfreshbad")
	d := wantDiag(t, diags, "stale_wd_gen.go drifted", "regenerate")
	if d.Severity != SevError {
		t.Errorf("drift severity = %s", d.Severity)
	}
	d = wantDiag(t, diags, "noheader_wd_gen.go has no")
	if d.Severity != SevWarn {
		t.Errorf("no-header severity = %s", d.Severity)
	}
}

// TestGenFreshMovedFixture: the source directory still exists but holds only
// test files — a distinct finding from plain nonexistence, because the fix is
// pointing awgen at the package's new home, not resurrecting a directory.
func TestGenFreshMovedFixture(t *testing.T) {
	diags := lint(t, &GenFreshAnalyzer{}, "genfreshmoved")
	d := wantDiag(t, diags, "moved_wd_gen.go claims source", "no longer holds a compilable package")
	if d.Severity != SevWarn {
		t.Errorf("moved-source severity = %s, want warn", d.Severity)
	}
	if n := len(diags); n != 1 {
		t.Errorf("want 1 genfresh finding, got %d:\n%s", n, render(diags))
	}
}

// TestGenFreshFromTestsDrift: genfresh must dispatch on the awgen:mode header
// and re-run the test miner, not the region reduction, for from-tests files.
func TestGenFreshFromTestsDrift(t *testing.T) {
	diags := lint(t, &GenFreshAnalyzer{}, "testminedrift")
	d := wantDiag(t, diags, "stale_testmine_wd_gen.go drifted", "-from-tests")
	if d.Severity != SevError {
		t.Errorf("from-tests drift severity = %s, want error", d.Severity)
	}
	if n := len(diags); n != 1 {
		t.Errorf("want 1 genfresh finding, got %d:\n%s", n, render(diags))
	}
}

func TestTestMineFixture(t *testing.T) {
	diags := lint(t, &TestMineAnalyzer{}, "testminebad")
	d := wantDiag(t, diags, "registration without an awgen:from-test provenance header")
	if d.Severity != SevError {
		t.Errorf("missing-provenance severity = %s, want error", d.Severity)
	}
	d = wantDiag(t, diags, `"testFloor" is declared only in this package's _test.go files`)
	if d.Severity != SevError {
		t.Errorf("test-capture severity = %s, want error", d.Severity)
	}
	d = wantDiag(t, diags, "vanished_test.go", "no longer exists", "-from-tests")
	if d.Severity != SevWarn {
		t.Errorf("orphaned-provenance severity = %s, want warn", d.Severity)
	}
	// The clean registration must produce nothing.
	for _, d := range diags {
		if strings.Contains(d.Message, "widget_depth") {
			t.Errorf("clean registration falsely flagged: %s", d)
		}
	}
	if n := len(diags); n != 3 {
		t.Errorf("want 3 testmine findings, got %d:\n%s", n, render(diags))
	}
}

// TestTestMineSkipsRegionFiles: region-mode generated files (no awgen:mode
// header) have no per-checker provenance and must not be flagged.
func TestTestMineSkipsRegionFiles(t *testing.T) {
	diags := lint(t, &TestMineAnalyzer{}, "genfreshbad")
	if len(diags) != 0 {
		t.Errorf("testmine flagged region-mode files:\n%s", render(diags))
	}
}

// TestMarshalDiagsLocation: the JSON report carries a flat file:line:col
// location per finding, and stays an array when empty.
func TestMarshalDiagsLocation(t *testing.T) {
	diags := lint(t, &GenFreshAnalyzer{}, "testminedrift")
	data, err := MarshalDiags(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("want 1 finding, got %d", len(decoded))
	}
	loc, _ := decoded[0]["location"].(string)
	if !strings.Contains(loc, "stale_testmine_wd_gen.go:5:1") {
		t.Errorf("location = %q, want file:line:col of the generated file", loc)
	}
	if decoded[0]["analyzer"] != "genfresh" {
		t.Errorf("analyzer = %v", decoded[0]["analyzer"])
	}
	empty, err := MarshalDiags(nil)
	if err != nil || string(empty) != "[]" {
		t.Errorf("MarshalDiags(nil) = %s, %v; want []", empty, err)
	}
}

// TestIgnoreDirective proves //wdlint:ignore suppresses a finding that the
// same analyzer reports without it (the dfs v1 checker carries one).
func TestIgnoreDirective(t *testing.T) {
	diags, err := Run(".", []string{"../dfs"}, []Analyzer{&FateShareAnalyzer{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "dfs.disk.v1") {
			t.Errorf("ignored finding leaked through: %s", d)
		}
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarn, SevError} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) succeeded")
	}
}
