package wdlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DriverCfgAnalyzer sanity-checks driver and checker configuration at
// Register/New call sites:
//
//   - constant zero or negative durations passed to watchdog.Timeout,
//     watchdog.Every, watchdog.WithTimeout, or watchdog.WithInterval — a
//     zero timeout disables hang detection entirely, which defeats the
//     driver's §3.3 confinement;
//   - constant non-positive thresholds (watchdog.Threshold), which would
//     alarm on the very first soft failure or never;
//   - nil validators (watchdog.ValidateWith(nil));
//   - two Register calls in one function statically registering the same
//     checker name, which panics at run time;
//   - drivers that are started with no report sink: no OnReport/OnAlarm
//     listener, no observer (WithObserver/SetObserver), and no polling of
//     driver state — every detection would be computed and dropped.
type DriverCfgAnalyzer struct{}

// Name implements Analyzer.
func (*DriverCfgAnalyzer) Name() string { return "drivercfg" }

// Doc implements Analyzer.
func (*DriverCfgAnalyzer) Doc() string {
	return "checker registrations need sane timeouts, thresholds, and validators"
}

// durationOpts are watchdog option functions taking a duration that must be
// positive.
var durationOpts = map[string]bool{
	"Timeout": true, "Every": true, "WithTimeout": true, "WithInterval": true,
}

// Run implements Analyzer.
func (a *DriverCfgAnalyzer) Run(u *Unit) []Diag {
	var diags []Diag
	report := func(p *Package, pos token.Pos, sev Severity, format string, args ...any) {
		diags = append(diags, Diag{
			Pos:      p.Pos(pos),
			Analyzer: a.Name(),
			Severity: sev,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, p := range u.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				a.checkSinkless(p, fd, report)
				// names tracks checker names statically registered in this
				// function, to catch duplicate registrations.
				names := make(map[string]token.Pos)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name := watchdogFunc(p, call.Fun); name != "" {
						a.checkOption(p, name, call, report)
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Register" || len(call.Args) == 0 {
						return true
					}
					name, ok := registeredName(p, call.Args[0])
					if !ok {
						return true
					}
					if _, dup := names[name]; dup {
						report(p, call.Pos(), SevError,
							"checker %q is already registered in this function; duplicate names panic at run time", name)
					} else {
						names[name] = call.Pos()
					}
					return true
				})
			}
		}
	}
	return diags
}

// sinkMethods install a report consumer on the driver; calling any of them
// means detections reach someone.
var sinkMethods = map[string]bool{
	"OnReport": true, "OnAlarm": true, "SetObserver": true,
}

// consumeMethods read driver verdicts on demand, which is a legitimate
// alternative to a push sink (tests and experiments poll).
var consumeMethods = map[string]bool{
	"CheckNow": true, "CheckAll": true, "Latest": true, "History": true,
	"CheckerStats": true, "Healthy": true, "State": true,
}

// checkSinkless flags drivers constructed with watchdog.New, started in the
// same function, whose reports and alarms observably go nowhere: no sink
// method, no WithObserver option, no on-demand consumption, and the driver
// variable never escapes the function (an escaping driver may be wired
// elsewhere, e.g. store.InstallWatchdog(driver, ...)).
func (a *DriverCfgAnalyzer) checkSinkless(p *Package, fd *ast.FuncDecl,
	report func(*Package, token.Pos, Severity, string, ...any)) {
	type driverInfo struct {
		pos      token.Pos
		hasSink  bool
		consumed bool
		started  bool
		escaped  bool
	}
	byObj := make(map[types.Object]*driverInfo)
	accounted := make(map[*ast.Ident]bool)

	// Pass 1: find `x := watchdog.New(...)` constructions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || watchdogFunc(p, call.Fun) != "New" {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id] // plain `=` rebinding
		}
		if obj == nil {
			return true
		}
		di := &driverInfo{pos: call.Pos()}
		for _, arg := range call.Args {
			if ac, ok := arg.(*ast.CallExpr); ok && watchdogFunc(p, ac.Fun) == "WithObserver" {
				di.hasSink = true
			}
		}
		byObj[obj] = di
		accounted[id] = true
		return true
	})
	if len(byObj) == 0 {
		return
	}

	// Pass 2: classify method calls on the tracked drivers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		di := byObj[p.Info.Uses[id]]
		if di == nil {
			return true
		}
		accounted[id] = true
		switch {
		case sinkMethods[sel.Sel.Name]:
			di.hasSink = true
		case consumeMethods[sel.Sel.Name]:
			di.consumed = true
		case sel.Sel.Name == "Start":
			di.started = true
		}
		return true
	})

	// Pass 3: any remaining reference is an escape (argument, field store,
	// return, closure capture feeding one of those, ...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || accounted[id] {
			return true
		}
		if di := byObj[p.Info.Uses[id]]; di != nil {
			di.escaped = true
		}
		return true
	})

	for _, di := range byObj {
		if di.started && !di.hasSink && !di.consumed && !di.escaped {
			report(p, di.pos, SevWarn,
				"driver is started but no report sink is wired: add OnReport/OnAlarm, an observer (WithObserver), or poll its state — detections are computed and dropped otherwise")
		}
	}
}

// checkOption validates a single watchdog.<Option>(...) call.
func (a *DriverCfgAnalyzer) checkOption(p *Package, name string, call *ast.CallExpr,
	report func(*Package, token.Pos, Severity, string, ...any)) {
	switch {
	case durationOpts[name]:
		if len(call.Args) != 1 {
			return
		}
		if v, ok := constInt(p, call.Args[0]); ok && v <= 0 {
			report(p, call.Pos(), SevError,
				"watchdog.%s(%d) disables the deadline; hang detection needs a positive duration (§3.3)", name, v)
		}
	case name == "Threshold":
		if len(call.Args) != 1 {
			return
		}
		if v, ok := constInt(p, call.Args[0]); ok && v <= 0 {
			report(p, call.Pos(), SevError,
				"watchdog.Threshold(%d) is non-positive; the alarm would fire immediately or never", v)
		}
	case name == "ValidateWith":
		if len(call.Args) != 1 {
			return
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && id.Name == "nil" {
			report(p, call.Pos(), SevError,
				"watchdog.ValidateWith(nil) registers a validator that can never run")
		}
	}
}

// constInt evaluates e as a constant integer (covers untyped ints and
// time.Duration expressions folded by the type checker).
func constInt(p *Package, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		// Placeholder imports (time) can leave `0 * time.Second` untyped;
		// catch the plain-literal-zero case directly.
		if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
			return 0, true
		}
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}

// registeredName statically resolves the checker name of a Register call's
// first argument: watchdog.NewChecker("name", ...), a CheckFunc literal, or
// any call whose first argument is a constant string (the checkers package
// convention: checkers.HeapLimit("name", ...)).
func registeredName(p *Package, arg ast.Expr) (string, bool) {
	switch arg := arg.(type) {
	case *ast.CallExpr:
		if len(arg.Args) == 0 {
			return "", false
		}
		if watchdogFunc(p, arg.Fun) == "NewChecker" {
			return constString(p, arg.Args[0])
		}
		// checkers.HeapLimit("name", ...) and friends: only trust the
		// convention when the first argument is a constant string AND the
		// callee is package-qualified (local constructors usually bake the
		// name in, so a shared first argument would be a false positive).
		if sel, ok := arg.Fun.(*ast.SelectorExpr); ok {
			if base := selBase(sel); base != nil {
				if _, isPkg := p.Info.Uses[base].(*types.PkgName); isPkg {
					return constString(p, arg.Args[0])
				}
			}
		}
	case *ast.CompositeLit:
		if !isCheckFuncType(p, arg.Type) {
			return "", false
		}
		for _, el := range arg.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "CheckerName" {
					return constString(p, kv.Value)
				}
			}
		}
	}
	return "", false
}

// selBase returns the base identifier of a selector expression.
func selBase(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id
	}
	return nil
}
