package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic Clock driven manually by calls to Advance. It
// starts at an arbitrary but fixed epoch. Timers and tickers fire exactly
// when the virtual time passes their deadlines, in deadline order, with ties
// broken by creation order.
//
// Virtual is safe for concurrent use. Goroutines blocked in Sleep or on a
// timer channel are released during Advance.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
	sleeper *sync.Cond // broadcast whenever the waiter set changes
}

// NewVirtual returns a virtual clock starting at a fixed epoch
// (2020-01-01T00:00:00Z), chosen so timestamps in logs are recognizable.
func NewVirtual() *Virtual {
	v := &Virtual{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
	v.sleeper = sync.NewCond(&v.mu)
	return v
}

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual {
	v := &Virtual{now: t}
	v.sleeper = sync.NewCond(&v.mu)
	return v
}

type waiter struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time
	period   time.Duration // >0 for tickers
	stopped  bool
	index    int // heap index, -1 when removed
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep blocks until the virtual clock has been advanced by at least d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel that receives the virtual time once the clock has
// advanced by d.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	w := v.addWaiterLocked(d, 0)
	return w.ch
}

// addWaiterLocked registers a waiter firing after d (period p for tickers).
// Deadlines in the past fire on the next Advance (even Advance(0)).
func (v *Virtual) addWaiterLocked(d, p time.Duration) *waiter {
	v.seq++
	w := &waiter{
		deadline: v.now.Add(d),
		seq:      v.seq,
		ch:       make(chan time.Time, 1),
		period:   p,
	}
	heap.Push(&v.waiters, w)
	v.sleeper.Broadcast()
	return w
}

// NewTimer returns a virtual timer firing after d.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	return &virtualTimer{v: v, w: v.addWaiterLocked(d, 0)}
}

// NewTicker returns a virtual ticker firing every d.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return &virtualTicker{v: v, w: v.addWaiterLocked(d, d)}
}

// Advance moves the virtual clock forward by d, firing every waiter whose
// deadline falls within the window, in deadline order. Tickers re-arm and may
// fire multiple times in one Advance.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	v.mu.Lock()
	target := v.now.Add(d)
	for len(v.waiters) > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		if w.stopped {
			continue
		}
		// Virtual time stands at the waiter's deadline while it fires, so a
		// handler reading Now() sees a consistent timestamp.
		if w.deadline.After(v.now) {
			v.now = w.deadline
		}
		select {
		case w.ch <- v.now:
		default: // receiver hasn't drained the last tick; drop, like time.Ticker
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
			heap.Push(&v.waiters, w)
		}
	}
	v.now = target
	v.mu.Unlock()
}

// AdvanceTo moves the virtual clock forward to t. It panics if t is in the
// past.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	d := t.Sub(v.now)
	v.mu.Unlock()
	v.Advance(d)
}

// Waiters reports how many timers, tickers and sleepers are currently
// registered. Tests use it (via BlockUntil) to know when the code under test
// has reached its next wait point.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, w := range v.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

// BlockUntil blocks until at least n waiters are registered on the clock.
func (v *Virtual) BlockUntil(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		live := 0
		for _, w := range v.waiters {
			if !w.stopped {
				live++
			}
		}
		if live >= n {
			return
		}
		v.sleeper.Wait()
	}
}

type virtualTimer struct {
	v *Virtual
	w *waiter
}

func (t *virtualTimer) C() <-chan time.Time { return t.w.ch }

func (t *virtualTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	was := !t.w.stopped && t.w.index >= 0
	t.w.stopped = true
	return was
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	was := !t.w.stopped && t.w.index >= 0
	t.w.stopped = true
	t.w = t.v.addWaiterLocked(d, 0)
	return was
}

type virtualTicker struct {
	v *Virtual
	w *waiter
}

func (t *virtualTicker) C() <-chan time.Time { return t.w.ch }

func (t *virtualTicker) Stop() {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	t.w.stopped = true
}
