// Package clock abstracts time so that components can run against either the
// real wall clock or a deterministic virtual clock in tests and simulations.
//
// Every timing-sensitive component in this repository (the watchdog driver,
// heartbeat detectors, replication timeouts, fault injection delays) takes a
// Clock rather than calling the time package directly. Tests drive a virtual
// clock forward explicitly, which makes detection-latency experiments both
// instantaneous and reproducible.
package clock

import "time"

// Clock provides the subset of the time package that the rest of the
// repository needs. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d.
	NewTicker(d time.Duration) Ticker
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Timer mirrors time.Timer behind an interface.
type Timer interface {
	// C returns the channel on which the expiry is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the timer was
	// still pending.
	Stop() bool
	// Reset re-arms the timer to fire after d.
	Reset(d time.Duration) bool
}

// Ticker mirrors time.Ticker behind an interface.
type Ticker interface {
	// C returns the channel on which ticks are delivered.
	C() <-chan time.Time
	// Stop shuts the ticker down.
	Stop()
}

// Real returns a Clock backed by the time package.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }

func (realClock) NewTimer(d time.Duration) Timer {
	return realTimer{time.NewTimer(d)}
}

func (realClock) NewTicker(d time.Duration) Ticker {
	return realTicker{time.NewTicker(d)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }
