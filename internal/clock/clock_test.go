package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := Real()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("Since returned non-positive duration after Sleep")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not fire")
	}
}

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual()
	start := v.Now()
	v.Advance(5 * time.Second)
	if got := v.Since(start); got != 5*time.Second {
		t.Fatalf("Since = %v, want 5s", got)
	}
	v.AdvanceTo(start.Add(10 * time.Second))
	if got := v.Since(start); got != 10*time.Second {
		t.Fatalf("Since after AdvanceTo = %v, want 10s", got)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual()
	ch := v.After(3 * time.Second)
	v.Advance(2 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before deadline")
	default:
	}
	v.Advance(time.Second)
	select {
	case ts := <-ch:
		if want := v.Now(); !ts.Equal(want) {
			t.Fatalf("fired with time %v, want %v", ts, want)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Second)
		close(done)
	}()
	v.BlockUntil(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	v.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestVirtualSleepZeroReturnsImmediately(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestVirtualTimerReset(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(time.Second)
	tm.Reset(5 * time.Second)
	v.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("reset timer fired at original deadline")
	default:
	}
	v.Advance(4 * time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire at new deadline")
	}
}

func TestVirtualTickerFiresRepeatedly(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		v.Advance(time.Second)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
}

func TestVirtualTickerCoalescesWhenNotDrained(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Second)
	defer tk.Stop()
	// Advance across 5 periods without draining: only one tick is buffered,
	// matching time.Ticker's drop behaviour.
	v.Advance(5 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1", n)
	}
}

func TestVirtualTickerStop(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Second)
	tk.Stop()
	v.Advance(3 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestVirtualFiringOrderIsDeterministic(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	v.BlockUntil(3)
	// Advance step by step so the completion order is observable.
	for i := 0; i < 3; i++ {
		v.Advance(time.Second)
		time.Sleep(10 * time.Millisecond) // let the released goroutine record itself
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", order, want)
		}
	}
}

func TestVirtualTieBreakByCreationOrder(t *testing.T) {
	v := NewVirtual()
	a := v.After(time.Second)
	b := v.After(time.Second)
	v.Advance(time.Second)
	ta := <-a
	tb := <-b
	if ta.After(tb) {
		t.Fatalf("earlier-created waiter fired later: %v > %v", ta, tb)
	}
}

func TestVirtualWaitersCount(t *testing.T) {
	v := NewVirtual()
	if got := v.Waiters(); got != 0 {
		t.Fatalf("Waiters = %d, want 0", got)
	}
	tm := v.NewTimer(time.Second)
	tk := v.NewTicker(time.Second)
	if got := v.Waiters(); got != 2 {
		t.Fatalf("Waiters = %d, want 2", got)
	}
	tm.Stop()
	tk.Stop()
	if got := v.Waiters(); got != 0 {
		t.Fatalf("Waiters after stop = %d, want 0", got)
	}
}

func TestVirtualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewVirtual().Advance(-time.Second)
}

func TestVirtualNonPositiveTickerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewVirtual().NewTicker(0)
}

func TestVirtualConcurrentAdvanceAndRegister(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Sleep(time.Millisecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			v.Advance(time.Millisecond)
		}
	}
}
