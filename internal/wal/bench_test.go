package wal

import (
	"fmt"
	"path/filepath"
	"testing"
)

func benchLog(b *testing.B) *Log {
	b.Helper()
	l, err := Open(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

func BenchmarkAppend128B(b *testing.B) {
	l := benchLog(b)
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)) + frameHeader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSyncEvery64(b *testing.B) {
	l := benchLog(b)
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	l := benchLog(b)
	for i := 0; i < 1000; i++ {
		l.Append([]byte(fmt.Sprintf("record-%04d-payload-payload", i)))
	}
	l.Sync()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.Replay(func([]byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 1000 {
			b.Fatalf("replayed %d", n)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	l := benchLog(b)
	for i := 0; i < 1000; i++ {
		l.Append(make([]byte, 256))
	}
	l.Sync()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
