// Package wal implements a write-ahead log with CRC-framed records.
//
// The log is the durability substrate of the kvs target system. Each record
// is framed as a 4-byte little-endian length, a 4-byte CRC32C of the
// payload, and the payload itself. Replay stops cleanly at the first
// corrupt or torn frame, which models crash-recovery semantics: everything
// before the tear is intact, everything after is discarded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned by Verify when a frame fails its checksum.
var ErrCorrupt = errors.New("wal: corrupt record")

const frameHeader = 8 // 4-byte length + 4-byte CRC

// Log is an append-only write-ahead log. It is safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64
	recs   int64
	synced int64 // offset covered by the last successful Sync
	// syncHook, when set, runs inside Sync immediately before the fsync; a
	// non-nil error aborts the sync. Tests use it to fail or count syncs
	// (group-commit coalescing and crash-consistency fault injection).
	syncHook func() error
}

// Open opens or creates the log at path and positions appends after the
// last intact record, truncating any torn tail.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, path: path}
	good, recs, err := l.scan()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.size = good
	l.recs = recs
	l.synced = good // bytes that survived a reopen are on stable storage
	return l, nil
}

// scan walks the file and returns the offset after the last intact record
// and the number of intact records.
func (l *Log) scan() (int64, int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var off, recs int64
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(l.f, hdr); err != nil {
			return off, recs, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return off, recs, nil // implausible length: treat as tear
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(l.f, payload); err != nil {
			return off, recs, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return off, recs, nil
		}
		off += frameHeader + int64(n)
		recs++
	}
}

// Append writes one record. The record is durable only after Sync.
func (l *Log) Append(payload []byte) error {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.recs++
	return nil
}

// Sync flushes appended records to stable storage. On success every byte
// appended before the call is durable and SyncedSize advances to cover it.
//
// The lock is released for the fsync itself so concurrent Appends proceed
// while the disk flush is in flight — this is what lets the group committer
// accumulate the next batch during the current sync instead of convoying
// every writer behind the syscall. Durability is unaffected: target is
// captured before the fsync, so it only covers bytes already written.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return errors.New("wal: closed")
	}
	f := l.f
	target := l.size
	hook := l.syncHook
	l.mu.Unlock()
	if hook != nil {
		if err := hook(); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	// Advance the watermark only if the log was not reset or truncated while
	// the lock was released (callers exclude that, but stay safe).
	if l.synced < target && target <= l.size {
		l.synced = target
	}
	l.mu.Unlock()
	return nil
}

// SyncedSize returns the log offset covered by the last successful Sync:
// everything at or before it survives a crash, everything after it may not.
func (l *Log) SyncedSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// SetSyncHook installs fn to run inside every Sync immediately before the
// fsync; a non-nil error fails the sync without advancing SyncedSize. It is
// test instrumentation for group-commit coalescing counts and sync-failure
// crash consistency; pass nil to remove.
func (l *Log) SetSyncHook(fn func() error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncHook = fn
}

// Size returns the log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of intact records.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Replay invokes fn on every intact record in order. Replay is safe while
// appends are paused; it reopens the file read-only so the append offset is
// unaffected.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	path := l.path
	size := l.size
	l.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, frameHeader)
	var off int64
	for off < size {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += frameHeader + int64(n)
	}
	return nil
}

// Verify re-reads the whole log, validating every frame. It returns
// ErrCorrupt (wrapped with the offset) if an intact-range frame fails its
// checksum — the partition-corruption check the paper's kvs example runs.
func (l *Log) Verify() error {
	return l.verifyRange()
}

func (l *Log) verifyRange() error {
	l.mu.Lock()
	path := l.path
	size := l.size
	l.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, frameHeader)
	var off int64
	for off < size {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return fmt.Errorf("wal: truncated frame at %d: %w", off, ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return fmt.Errorf("wal: implausible length at %d: %w", off, ErrCorrupt)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: truncated payload at %d: %w", off, ErrCorrupt)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return fmt.Errorf("wal: bad checksum at %d: %w", off, ErrCorrupt)
		}
		off += frameHeader + int64(n)
	}
	return nil
}

// Reset truncates the log to empty (called after a successful flush to an
// SSTable makes the logged records redundant).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.size = 0
	l.recs = 0
	l.synced = 0
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }
