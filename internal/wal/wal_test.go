package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, _ := openLog(t)
	records := [][]byte{[]byte("one"), []byte("two"), []byte(""), []byte("four")}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 4 {
		t.Fatalf("Records = %d", l.Records())
	}
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		got = append(got, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], records[i])
		}
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 5 {
		t.Fatalf("records after reopen = %d", l2.Records())
	}
	// Appends continue after the existing tail.
	if err := l2.Append([]byte("six")); err != nil {
		t.Fatal(err)
	}
	if l2.Records() != 6 {
		t.Fatalf("records = %d", l2.Records())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("intact-1"))
	l.Append([]byte("intact-2"))
	l.Sync()
	size := l.Size()
	l.Close()

	// Simulate a crash mid-append: write half a frame.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2}) // header cut short
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 2 {
		t.Fatalf("records = %d, want 2", l2.Records())
	}
	if l2.Size() != size {
		t.Fatalf("size = %d, want %d", l2.Size(), size)
	}
	count := 0
	l2.Replay(func([]byte) error { count++; return nil })
	if count != 2 {
		t.Fatalf("replayed %d", count)
	}
}

func TestCorruptMiddleRecordStopsAtTear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("aaaa"))
	l.Append([]byte("bbbb"))
	l.Append([]byte("cccc"))
	l.Sync()
	l.Close()

	// Flip a byte inside the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8+4+8+1] ^= 0xFF // first frame is 8+4 bytes; corrupt second payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Records() != 1 {
		t.Fatalf("records = %d, want 1 (stop at corruption)", l2.Records())
	}
}

func TestVerifyDetectsSilentCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("precious data"))
	l.Sync()
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify on intact log: %v", err)
	}
	// Corrupt in place without reopening — the open handle's view of "size"
	// still covers the corrupted frame, modelling bit rot under a running
	// process.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	os.WriteFile(path, data, 0o644)
	err = l.Verify()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify = %v, want ErrCorrupt", err)
	}
}

func TestReset(t *testing.T) {
	l, _ := openLog(t)
	l.Append([]byte("x"))
	l.Sync()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 || l.Records() != 0 {
		t.Fatalf("size=%d records=%d after reset", l.Size(), l.Records())
	}
	// Usable after reset.
	if err := l.Append([]byte("y")); err != nil {
		t.Fatal(err)
	}
	count := 0
	l.Replay(func([]byte) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d after reset+append", count)
	}
}

func TestClosedLogErrors(t *testing.T) {
	l, _ := openLog(t)
	l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync on closed log succeeded")
	}
	if err := l.Reset(); err == nil {
		t.Fatal("Reset on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	l, _ := openLog(t)
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	boom := errors.New("boom")
	err := l.Replay(func([]byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// Property: any sequence of appended payloads replays identically after
// close and reopen.
func TestAppendReplayProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(payloads [][]byte) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("q%d.wal", i))
		l, err := Open(path)
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if len(p) > 1<<16 {
				p = p[:1<<16]
			}
			if err := l.Append(p); err != nil {
				l.Close()
				return false
			}
		}
		l.Sync()
		l.Close()
		l2, err := Open(path)
		if err != nil {
			return false
		}
		defer l2.Close()
		var got [][]byte
		l2.Replay(func(p []byte) error {
			cp := make([]byte, len(p))
			copy(cp, p)
			got = append(got, cp)
			return nil
		})
		if len(got) != len(payloads) {
			return false
		}
		for j := range payloads {
			want := payloads[j]
			if len(want) > 1<<16 {
				want = want[:1<<16]
			}
			if !bytes.Equal(got[j], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
