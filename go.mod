module gowatchdog

go 1.22
