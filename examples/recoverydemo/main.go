// recoverydemo: the §5.2 opportunities end to end. Silent corruption hits a
// kvs SSTable; the watchdog's partition checker detects and pinpoints it;
// a failure capsule is cut for postmortem reproduction; the recovery
// manager quarantines the corrupt table in place (no restart); the store is
// verified healthy again; finally the capsule is replayed to show the fault
// no longer reproduces after repair.
//
//	go run ./examples/recoverydemo
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gowatchdog/internal/capsule"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdruntime"
)

func main() {
	dir, err := os.MkdirTemp("", "recoverydemo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{Dir: dir, FlushThresholdBytes: 1 << 30,
		WatchdogFactory: factory})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	shadow, err := wdio.NewFS(filepath.Join(dir, "shadow"), 0)
	if err != nil {
		log.Fatal(err)
	}
	// Recovery: quarantine corrupt tables when the partition checker alarms.
	mgr := recovery.New()
	mgr.Register(recovery.ForSiteOp("quarantine-corrupt-tables", "sstable.VerifyChecksum",
		func(watchdog.Report) error {
			total := 0
			for i := 0; i < store.Partitions(); i++ {
				n, err := store.RepairPartition(i)
				if err != nil {
					return err
				}
				total += n
			}
			fmt.Printf("RECOVERY: quarantined %d corrupt table(s) in place\n", total)
			return nil
		}))

	// The runtime composes driver + recovery; the demo steps the driver with
	// CheckNow instead of starting it, so detection stays synchronous.
	rt, err := wdruntime.New(
		wdruntime.WithFactory(factory),
		wdruntime.WithTimeout(time.Second),
		wdruntime.WithRecovery(mgr),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	driver := rt.Driver()
	store.InstallWatchdog(driver, shadow)

	// Data in two generations so the repair provably keeps the healthy one.
	store.Set([]byte("gen1/key"), []byte("survives"))
	store.FlushAll(true)
	store.Set([]byte("gen2/key"), []byte("will-be-quarantined"))
	store.FlushAll(true)

	// Silent corruption hits the newest table of the loaded partition.
	var victim string
	for i := 0; i < store.Partitions(); i++ {
		if paths := store.TablePaths(i); len(paths) > 0 {
			victim = paths[0]
			break
		}
	}
	data, _ := os.ReadFile(victim)
	data[9] ^= 0x40
	os.WriteFile(victim, data, 0o644)
	fmt.Printf("injected silent corruption into %s\n\n", filepath.Base(victim))

	// Detection.
	rep, _ := driver.CheckNow("kvs.partition")
	fmt.Printf("watchdog: %s\n", rep)
	if !rep.Status.Abnormal() {
		log.Fatal("watchdog missed the corruption")
	}

	// Capsule for postmortem reproduction.
	capPath := filepath.Join(dir, "failure.json")
	if err := capsule.FromReport(rep).WriteFile(capPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capsule written: %s\n\n", capPath)

	// Recovery already ran synchronously from the alarm; verify health.
	rep, _ = driver.CheckNow("kvs.partition")
	fmt.Printf("watchdog after recovery: %s\n", rep)
	v, ok, _ := store.Get([]byte("gen1/key"))
	fmt.Printf("healthy-generation data: %q (present=%v)\n", v, ok)

	// Postmortem: replay the capsule — the environmental fault is gone.
	c, err := capsule.ReadFile(capPath)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := capsule.Replay(watchdog.NewChecker("kvs.partition.replay",
		func(ctx *watchdog.Context) error {
			site := watchdog.Site{Function: "kvs.(*Store).VerifyPartition", Op: "sstable.VerifyChecksum"}
			return watchdog.Op(ctx, site, func() error {
				for i := 0; i < store.Partitions(); i++ {
					if err := store.VerifyPartition(i); err != nil {
						return err
					}
				}
				return nil
			})
		}), c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapsule replay after repair: %s\n", replayed.Status)
	fmt.Println(mgr.Summary())
}
