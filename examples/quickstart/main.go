// Quickstart: wrap a toy service with an intrinsic watchdog in ~60 lines.
//
// The service is a queue consumer whose "upload" step can wedge. A mimic
// checker shares its fate: it executes the same vulnerable operation with
// state synchronized through a hook, so when the upload path breaks the
// checker breaks the same way — and the driver pinpoints the operation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

// uploader simulates a flaky remote dependency shared by the main program
// and the mimic checker (same environment, shared fate).
type uploader struct{ healthy atomic.Bool }

func (u *uploader) upload(payload []byte) error {
	if !u.healthy.Load() {
		return errors.New("remote endpoint returns 503")
	}
	return nil
}

func main() {
	up := &uploader{}
	up.healthy.Store(true)

	// 1. One runtime per process owns the watchdog stack; checkers are
	//    registered on its driver before Start.
	rt, err := wdruntime.New(
		wdruntime.WithInterval(50*time.Millisecond),
		wdruntime.WithTimeout(500*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	driver := rt.Driver()

	// 2. A mimic checker: re-run the vulnerable operation with the payload
	//    the hook captured, wrapped in watchdog.Op for pinpointing.
	site := watchdog.Site{Function: "main.consume", Op: "uploader.upload", File: "main.go", Line: 70}
	driver.Register(watchdog.NewChecker("uploader", func(ctx *watchdog.Context) error {
		payload := ctx.GetBytes("payload")
		return watchdog.Op(ctx, site, func() error {
			return up.upload(payload)
		})
	}))
	driver.OnAlarm(func(a watchdog.Alarm) {
		fmt.Printf("ALARM: %s\n", a.Report)
	})

	// 3. The main program executes hooks on its hot path: one-way state
	//    sync into the checker's context.
	hook := driver.Factory().Context("uploader")
	consume := func(item []byte) {
		hook.Put("payload", item) // the watchdog hook
		if err := up.upload(item); err != nil {
			// the main program may retry/absorb; the watchdog still watches
			_ = err
		}
	}

	if err := rt.Start(context.Background()); err != nil {
		panic(err)
	}
	defer rt.Close()

	fmt.Println("healthy phase: consuming items...")
	for i := 0; i < 5; i++ {
		consume([]byte(fmt.Sprintf("item-%d", i)))
		time.Sleep(60 * time.Millisecond)
	}
	rep, _ := driver.Latest("uploader")
	fmt.Printf("watchdog says: %s\n\n", rep)

	fmt.Println("breaking the remote endpoint...")
	up.healthy.Store(false)
	time.Sleep(300 * time.Millisecond)
	rep, _ = driver.Latest("uploader")
	fmt.Printf("watchdog says: %s\n", rep)
	fmt.Printf("pinpointed vulnerable operation: %s\n", rep.Site)
}
