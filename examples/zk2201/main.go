// zk2201: reproduce the paper's §4.2 case study end to end and print the
// timeline: a network fault blocks the leader's remote sync inside the
// commit critical section; the heartbeat detector and the admin command
// keep reporting healthy; the generated mimic watchdog detects the blocked
// call and pinpoints it with the hook-captured context.
//
//	go run ./examples/zk2201            # scaled parameters (50ms/300ms)
//	go run ./examples/zk2201 -paper     # paper parameters (1s/6s, ~7s detection)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gowatchdog/internal/experiment"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's 1s interval / 6s timeout")
	flag.Parse()

	scratch, err := os.MkdirTemp("", "zk2201-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	interval, timeout := time.Duration(0), time.Duration(0)
	if *paper {
		interval, timeout = time.Second, 6*time.Second
		fmt.Println("running with paper parameters (1s/6s); expect ≈7s detection and a ~30s run")
	}
	res, err := experiment.RunZK2201(scratch, interval, timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
}
