// kvsfault: run the paper's Figure-1 kvs with its generated watchdog,
// inject a gray failure (a stuck compaction, by default), and watch the
// mimic checker detect and pinpoint it while the client-facing API still
// answers PING — i.e. an extrinsic detector would see nothing wrong.
//
//	go run ./examples/kvsfault
//	go run ./examples/kvsfault -fault kvs.flusher.write=error
//	go run ./examples/kvsfault -journal detections.jsonl   # then: wdreplay detections.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdobs"
	"gowatchdog/internal/wdruntime"
)

func main() {
	faultSpec := flag.String("fault", "kvs.compaction.merge=hang", "<point>=<hang|error>")
	journalPath := flag.String("journal", "", "write the wdobs detection journal here as JSONL")
	flag.Parse()

	dir, err := os.MkdirTemp("", "kvsfault-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{Dir: dir, WatchdogFactory: factory})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	srv, err := kvs.Serve("127.0.0.1:0", store)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	shadow, err := wdio.NewFS(filepath.Join(dir, "wd-shadow"), 0)
	if err != nil {
		log.Fatal(err)
	}
	ropts := []wdruntime.Option{
		wdruntime.WithFactory(factory),
		wdruntime.WithInterval(100 * time.Millisecond),
		wdruntime.WithTimeout(400 * time.Millisecond),
	}
	if *journalPath != "" {
		ropts = append(ropts, wdruntime.WithJournalPath(*journalPath))
	}
	rt, err := wdruntime.New(ropts...)
	if err != nil {
		log.Fatal(err)
	}
	driver := rt.Driver()
	store.InstallWatchdog(driver, shadow)

	alarm := make(chan watchdog.Alarm, 1)
	driver.OnAlarm(func(a watchdog.Alarm) {
		select {
		case alarm <- a:
		default:
		}
	})

	// Client traffic through the public TCP API.
	client, err := kvs.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 64; i++ {
		if err := client.Set(fmt.Sprintf("user:%03d", i), "profile-data"); err != nil {
			log.Fatal(err)
		}
	}
	store.FlushAll(true)
	if err := rt.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kvs serving on %s with %d watchdog checkers: %v\n",
		srv.Addr(), len(driver.Checkers()), driver.Checkers())

	// Inject the gray failure.
	point, kindStr, _ := strings.Cut(*faultSpec, "=")
	kind := faultinject.Hang
	if kindStr == "error" {
		kind = faultinject.Error
	}
	store.Injector().Arm(point, faultinject.Fault{Kind: kind})
	defer store.Injector().Clear()
	fmt.Printf("\ninjected %s at %s\n", kind, point)

	// The client-facing surface still looks fine...
	if err := client.Ping(); err != nil {
		log.Fatalf("ping failed: %v", err)
	}
	if v, err := client.Get("user:001"); err != nil || v != "profile-data" {
		log.Fatalf("get broken: %q %v", v, err)
	}
	fmt.Println("client view: PING ok, GET ok — an external prober sees a healthy process")

	// ...but the watchdog catches the internal fault.
	select {
	case a := <-alarm:
		fmt.Printf("\nWATCHDOG ALARM after injection: %s\n", a.Report)
		fmt.Printf("pinpoint: %s\n", a.Report.Site)
		if len(a.Report.Payload) > 0 {
			fmt.Println("failure-inducing context captured by hooks:")
			for k, v := range a.Report.Payload {
				fmt.Printf("  %s = %.60v\n", k, v)
			}
		}
	case <-time.After(10 * time.Second):
		log.Fatal("watchdog never detected the fault")
	}

	// Disarm the fault so the hung checker goroutine can unwind, then Close:
	// it drains the driver and flushes the journal before releasing it; a
	// sink write error surfaces here.
	store.Injector().Clear()
	if err := rt.Close(); err != nil {
		log.Fatalf("watchdog shutdown: %v", err)
	}
	if *journalPath != "" {
		// Self-verify the JSONL round-trips before handing it to wdreplay.
		jf, err := os.Open(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		events, err := wdobs.ReadJournal(jf)
		jf.Close()
		if err != nil {
			log.Fatalf("journal does not replay: %v", err)
		}
		fmt.Printf("\ndetection journal: %d events in %s (inspect with: go run ./cmd/wdreplay %s)\n",
			len(events), *journalPath, *journalPath)
	}
}
