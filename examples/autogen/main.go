// autogen: run AutoWatchdog's program logic reduction (§4, Figures 2–3)
// against the coord package's snapshot code and show the three artifacts:
// the reduction report, the generated checker source, and a hook-
// instrumented function.
//
//	go run ./examples/autogen
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gowatchdog/internal/autowatchdog"
	"gowatchdog/internal/experiment"
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, err := experiment.FindModuleRoot(wd)
	if err != nil {
		log.Fatal(err)
	}
	out, err := os.MkdirTemp("", "autogen-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(out)

	a, err := autowatchdog.Analyze(autowatchdog.Config{
		PackageDir: filepath.Join(root, "internal", "coord"),
		OutDir:     out,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("================ reduction report (Figure 2) ================")
	fmt.Print(a.Summary())

	genPath, err := a.Generate()
	if err != nil {
		log.Fatal(err)
	}
	gen, err := os.ReadFile(genPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n================ generated checkers (Figure 3) ================")
	fmt.Println(excerpt(string(gen), 60))

	if _, err := a.Instrument(""); err != nil {
		log.Fatal(err)
	}
	inst, err := os.ReadFile(filepath.Join(out, "snapshot.go"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n========== instrumented SerializeSnapshot (hook inserted) ==========")
	fmt.Println(functionExcerpt(string(inst), "func (t *DataTree) SerializeSnapshot"))
}

// excerpt returns the first n lines.
func excerpt(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = append(lines[:n], "... (truncated)")
	}
	return strings.Join(lines, "\n")
}

// functionExcerpt returns one function's source.
func functionExcerpt(src, decl string) string {
	idx := strings.Index(src, decl)
	if idx < 0 {
		return "(function not found)"
	}
	rest := src[idx:]
	end := strings.Index(rest, "\n}")
	if end < 0 {
		return rest
	}
	return rest[:end+2]
}
