// Package gowatchdog's root benchmark harness regenerates every table and
// figure of the paper (one benchmark per artifact; see DESIGN.md's
// per-experiment index) and measures the watchdog's overhead claim (E6).
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks report domain metrics (detections, false alarms,
// detection latency) via b.ReportMetric in addition to wall time.
package gowatchdog

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"gowatchdog/internal/autowatchdog"
	"gowatchdog/internal/experiment"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
)

// BenchmarkTable1Matrix regenerates the empirical Table 1: detection matrix
// of crash FD vs error handler vs watchdog across five fault classes.
func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1(b.TempDir(), 250*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, dets := range res.Matrix {
			for _, o := range dets {
				if o == experiment.Detected || o == experiment.DetectedPinpoint {
					detected++
				}
			}
		}
		b.ReportMetric(float64(detected), "detections")
	}
}

// BenchmarkTable2CheckerTypes regenerates the empirical Table 2:
// completeness/accuracy/pinpoint of probe, signal and mimic checkers.
func BenchmarkTable2CheckerTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable2(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DetectedBy["mimic"]), "mimic-detected")
		b.ReportMetric(float64(res.DetectedBy["signal"]), "signal-detected")
		b.ReportMetric(float64(res.DetectedBy["probe"]), "probe-detected")
		b.ReportMetric(float64(res.FalseAlarms["signal"]), "signal-false-alarms")
	}
}

// BenchmarkZK2201Detection regenerates the §4.2 case study and reports the
// watchdog's time-to-detect (scaled parameters; the paper-parameter run is
// `wdbench -exp zk2201 -paper`).
func BenchmarkZK2201Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunZK2201(b.TempDir(), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.WatchdogLatency < 0 {
			b.Fatal("watchdog never detected")
		}
		b.ReportMetric(float64(res.WatchdogLatency.Milliseconds()), "detect-ms")
		b.ReportMetric(boolMetric(res.HeartbeatDetected), "heartbeat-detected")
		b.ReportMetric(boolMetric(res.AdminDetected), "admin-detected")
	}
}

// BenchmarkContextAblation regenerates E7 (§3.1): false alarms with and
// without one-way context gating on an in-memory kvs.
func BenchmarkContextAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunContextAblation(b.TempDir(), 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GatedFalseAlarms), "gated-false-alarms")
		b.ReportMetric(float64(res.UngatedFalseAlarms), "ungated-false-alarms")
	}
}

// BenchmarkValidationChain regenerates E9 (§5.1): probe validation
// suppressing mimic alarms for impact-free transient faults.
func BenchmarkValidationChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunValidationChain(b.TempDir(), 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AlarmsWithoutValidation), "alarms")
		b.ReportMetric(float64(res.SuppressedByProbe), "suppressed")
	}
}

// BenchmarkDiskCheckerGenerations regenerates E8 (§3.3): the v1 vs v2 HDFS
// disk checker on a partially failed volume.
func BenchmarkDiskCheckerGenerations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDiskChecker(b.TempDir(), 150*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		v2 := 0
		for _, cell := range res.Matrix {
			if cell["v2"] != experiment.Missed {
				v2++
			}
		}
		b.ReportMetric(float64(v2), "v2-detections")
	}
}

// BenchmarkFig2Reduction regenerates E4 (Figures 2–3): AutoWatchdog's
// program logic reduction over the three target systems, reporting the
// checker ("region") and vulnerable-op counts of §4.2.
func BenchmarkFig2Reduction(b *testing.B) {
	wd, err := filepath.Abs(".")
	if err != nil {
		b.Fatal(err)
	}
	root, err := experiment.FindModuleRoot(wd)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunReduction(root)
		if err != nil {
			b.Fatal(err)
		}
		regions, ops := 0, 0
		for _, row := range res.Systems {
			regions += row.Regions
			ops += row.Ops
		}
		b.ReportMetric(float64(regions), "checkers")
		b.ReportMetric(float64(ops), "vulnerable-ops")
	}
}

// BenchmarkCheckerCoverage regenerates E10: fault coverage as the mimic
// suite grows checker by checker.
func BenchmarkCheckerCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCheckerCoverage(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Detected[0]), "coverage-1-checker")
		b.ReportMetric(float64(res.Detected[len(res.Detected)-1]), "coverage-full-suite")
	}
}

// BenchmarkReductionAblation quantifies §4.1's dedup step: vulnerable ops a
// checker must execute per run with and without "removing similar
// vulnerable operations", over the three target systems.
func BenchmarkReductionAblation(b *testing.B) {
	wd, err := filepath.Abs(".")
	if err != nil {
		b.Fatal(err)
	}
	root, err := experiment.FindModuleRoot(wd)
	if err != nil {
		b.Fatal(err)
	}
	pkgs := []string{"internal/kvs", "internal/coord", "internal/dfs"}
	for i := 0; i < b.N; i++ {
		reduced, full := 0, 0
		for _, pkg := range pkgs {
			a1, err := autowatchdog.Analyze(autowatchdog.Config{PackageDir: filepath.Join(root, pkg)})
			if err != nil {
				b.Fatal(err)
			}
			a2, err := autowatchdog.Analyze(autowatchdog.Config{
				PackageDir: filepath.Join(root, pkg), DisableReduction: true})
			if err != nil {
				b.Fatal(err)
			}
			reduced += a1.TotalOps()
			full += a2.TotalOps()
		}
		b.ReportMetric(float64(reduced), "ops-reduced")
		b.ReportMetric(float64(full), "ops-unreduced")
	}
}

// benchmarkKVSWorkload measures the kvs mutation+read path under three
// watchdog configurations (E6: "without slowing down the main program").
func benchmarkKVSWorkload(b *testing.B, mode string) {
	dir := b.TempDir()
	var factory *watchdog.Factory
	if mode != "baseline" {
		factory = watchdog.NewFactory()
	}
	store, err := kvs.Open(kvs.Config{
		Dir:             dir,
		WatchdogFactory: factory,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	// Run the background flusher/compactor as a deployment would: it keeps
	// the WAL and memtable bounded, so the fsck-style partition checker
	// verifies a bounded working set rather than an ever-growing log.
	store.Start()

	if mode == "full" {
		shadow, err := wdio.NewFS(filepath.Join(dir, "wd-shadow"), 0)
		if err != nil {
			b.Fatal(err)
		}
		driver := watchdog.New(
			watchdog.WithFactory(factory),
			watchdog.WithInterval(100*time.Millisecond),
			watchdog.WithTimeout(2*time.Second),
		)
		store.InstallWatchdog(driver, shadow)
		driver.Start()
		defer driver.Stop()
	}

	val := []byte("benchmark-value-0123456789abcdef")
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench/key/%04d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := store.Set(k, val); err != nil {
			b.Fatal(err)
		}
		if i%8 == 0 {
			if _, _, err := store.Get(k); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkOverheadKVSBaseline is the kvs write path with no watchdog at all.
func BenchmarkOverheadKVSBaseline(b *testing.B) { benchmarkKVSWorkload(b, "baseline") }

// BenchmarkOverheadKVSHooksOnly adds the instrumentation hooks (context
// pushes on the hot path) without a running driver.
func BenchmarkOverheadKVSHooksOnly(b *testing.B) { benchmarkKVSWorkload(b, "hooks") }

// BenchmarkOverheadKVSFullWatchdog runs the complete checker suite
// concurrently on a 10ms cadence while the workload runs.
func BenchmarkOverheadKVSFullWatchdog(b *testing.B) { benchmarkKVSWorkload(b, "full") }

// BenchmarkDetectionLatencyVsInterval sweeps the watchdog check interval
// (the E5 parameter sweep): detection latency ≈ interval + timeout.
func BenchmarkDetectionLatencyVsInterval(b *testing.B) {
	for _, interval := range []time.Duration{20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(interval.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunZK2201(b.TempDir(), interval, 4*interval)
				if err != nil {
					b.Fatal(err)
				}
				if res.WatchdogLatency < 0 {
					b.Fatal("never detected")
				}
				b.ReportMetric(float64(res.WatchdogLatency.Milliseconds()), "detect-ms")
			}
		})
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
