# Development entry points. `make check` is what CI runs.

GO ?= go

# Packages whose concurrency matters most: the driver/context core, the
# coordination service, the fake clock they share, the lock-free metric
# paths (gauge registry, wdobs histograms/journal), the alarm-driven
# recovery/campaign loop, the fault injector, the gossiping mesh, and the
# lock-light CEP event ring.
RACE_PKGS := ./internal/watchdog ./internal/coord ./internal/clock ./internal/gauge ./internal/wdobs ./internal/recovery ./internal/campaign ./internal/campaign/meshscale ./internal/wdruntime ./internal/faultinject ./internal/wdmesh ./internal/wdmesh/wire ./internal/wdcep ./internal/autowatchdog/testmine ./internal/supervise ./internal/sdnotify ./internal/kvs ./internal/kvsload

.PHONY: build test vet lint race smoke mesh-smoke mesh-bench cep-smoke super-smoke cep-bench kvs-bench gen-smoke ablation check golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the watchdog-hygiene analyzers (cmd/wdlint) over the module.
# Info-level findings are reported but do not fail; warn and error do.
lint:
	$(GO) run ./cmd/wdlint ./...

race:
	$(GO) test -race $(RACE_PKGS)

# smoke runs short seeded fault-injection campaigns against every substrate.
# The synth campaign is virtual-clock (instant, bit-deterministic from the
# seed); the kvs and dfs campaigns exercise the real stores through the same
# wdruntime stack the daemons deploy, on the real clock with tick-scale
# breaker backoff. Any exit is nonzero if the self-hardening loop
# false-positives or misses too much.
smoke:
	$(GO) run ./cmd/wdchaos -substrate synth -seed 42 -interval 1s \
		-warmup 5 -storm 30 -cooldown 15 -grace 8 \
		-breaker 3 -breaker-backoff 10s -damp 20s -hang-budget 2
	$(GO) run ./cmd/wdchaos -substrate kvs -seed 2 -interval 20ms \
		-warmup 5 -storm 20 -cooldown 10 -grace 8 \
		-breaker 3 -breaker-backoff 100ms -damp 20s -hang-budget 2
	$(GO) run ./cmd/wdchaos -substrate dfs -seed 42 -interval 20ms \
		-warmup 5 -storm 20 -cooldown 10 -grace 8 \
		-breaker 3 -breaker-backoff 100ms -damp 20s -hang-budget 2

# mesh-smoke runs the seeded 3-node in-process mesh campaign: a remote
# fail-slow fault must be detected cluster-wide through gossiped intrinsic
# verdicts (while plain reachability heartbeats stay quiet), verdicts must
# clear on recovery, and a one-way partition must raise zero false positives
# at quorum 2.
mesh-smoke:
	$(GO) run ./cmd/wdchaos -substrate mesh -seed 7 -nodes 3 -quorum 2 \
		-mesh-interval 25ms

# mesh-bench regenerates the mesh-at-scale survival verdict (E17): 500
# Step-mode nodes on a virtual clock, driven through seeded correlated
# partition, churn, rejoin, and lossy-link faults. Gates: full convergence,
# intrinsic detection on every observer, zero false positives, and per-round
# message volume within the O(N·K) budget (vs the full mesh's O(N²)). The
# verdict is bit-deterministic from the seed and committed as BENCH_mesh.json.
mesh-bench:
	$(GO) run ./cmd/wdchaos -substrate meshscale -seed 1 -nodes 500 \
		-fanout 3 -quorum 2 -bench-out BENCH_mesh.json

# cep-smoke runs the seeded temporal-rule campaign: a streak fault must fire
# the consecutive-abnormal rule, a concurrent spread fault must fire the
# distinct-checkers rule, and the fault-free control arm must fire nothing.
# Virtual clock: instant and bit-deterministic from the seed.
cep-smoke:
	$(GO) run ./cmd/wdchaos -substrate cep -seed 42

# super-smoke runs the seeded supervision campaign: a real crash-restart
# supervisor over re-executions of wdchaos, scored on time-to-restart after
# SIGKILL, stuck detection after SIGSTOP (feeds stop, process lives), episode
# adoption across a supervisor restart, and the crash-loop storm breaker.
# Exactly one open/close ledger pair per induced outage or the exit is
# nonzero.
super-smoke:
	$(GO) run ./cmd/wdchaos -substrate super -seed 42 -outages 2

# cep-bench regenerates the wdcep perf verdict: the engine must sustain at
# least 1M events/sec single-threaded with zero steady-state allocations.
cep-bench:
	$(GO) run ./cmd/wdbench -exp cep -cep-out BENCH_wdcep.json

# kvs-bench regenerates the kvs hot-path perf verdict: paired watchdog-off
# and watchdog-on wdload runs at saturation (64 pipelined connections,
# 1M+ total ops, durable group-commit writes). The run fails if watchdog
# overhead on throughput exceeds 5% or the on-arm drops below the floor.
kvs-bench:
	$(GO) run ./cmd/wdbench -exp kvsload -kvs-out BENCH_kvs.json

# gen-smoke proves the test miner still extracts checkers from the real
# service test suites: awgen -from-tests exits nonzero when a package yields
# no minable assertion predicates, so a refactor that silently starves the
# miner fails here rather than after the generated files rot.
gen-smoke:
	$(GO) run ./cmd/awgen -from-tests -quiet -pkg ./internal/kvs
	$(GO) run ./cmd/awgen -from-tests -quiet -pkg ./internal/coord

# ablation runs the E13 checker-source comparison: the kvs and dfs substrates
# under the reduced suite, the test-mined suite, and both. Mined-only arms
# miss write-path faults by design, so the detection gate is lowered and the
# verdicts are compared, not pass/failed.
ablation:
	for src in reduced mined both; do \
		$(GO) run ./cmd/wdchaos -substrate kvs -checkers $$src -seed 13 \
			-interval 20ms -warmup 5 -storm 25 -cooldown 10 \
			-min-detection-rate 0.01 || exit 1; \
		$(GO) run ./cmd/wdchaos -substrate dfs -checkers $$src -seed 13 \
			-interval 20ms -warmup 5 -storm 25 -cooldown 10 \
			-min-detection-rate 0.01 || exit 1; \
	done

# golden refreshes the AutoWatchdog generator goldens (region reduction and
# test mining) after an intentional generator change.
golden:
	$(GO) test ./internal/autowatchdog -run Golden -update
	$(GO) test ./internal/autowatchdog/testmine -run Golden -update

check: build vet lint test race smoke mesh-smoke mesh-bench cep-smoke super-smoke gen-smoke cep-bench kvs-bench
