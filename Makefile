# Development entry points. `make check` is what CI runs.

GO ?= go

# Packages whose concurrency matters most: the driver/context core, the
# coordination service, the fake clock they share, and the lock-free metric
# paths (gauge registry, wdobs histograms/journal).
RACE_PKGS := ./internal/watchdog ./internal/coord ./internal/clock ./internal/gauge ./internal/wdobs

.PHONY: build test vet lint race check golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the watchdog-hygiene analyzers (cmd/wdlint) over the module.
# Info-level findings are reported but do not fail; warn and error do.
lint:
	$(GO) run ./cmd/wdlint ./...

race:
	$(GO) test -race $(RACE_PKGS)

# golden refreshes the AutoWatchdog reduction goldens after an intentional
# generator change.
golden:
	$(GO) test ./internal/autowatchdog -run Golden -update

check: build vet lint test race
