package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"gowatchdog/internal/wdcep"
)

// cepPassEventsPerSec is the wdcep ingest throughput bar: the engine must
// sustain at least one million events per second single-threaded, or the CI
// perf verdict fails.
const cepPassEventsPerSec = 1e6

// CEPBenchResult is the machine-readable wdcep perf verdict, written to
// BENCH_wdcep.json and gated on in CI.
type CEPBenchResult struct {
	Benchmark    string  `json:"benchmark"`
	Iterations   int     `json:"iterations"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	// PassBar echoes the throughput threshold the verdict was scored
	// against.
	PassBar float64 `json:"pass_bar_events_per_sec"`
	Pass    bool    `json:"pass"`
}

// runCEPBench executes the wdcep ingest benchmark through testing.Benchmark,
// writes the JSON verdict to outPath, and fails when throughput misses the
// bar or the steady state allocates.
func runCEPBench(outPath string) (*CEPBenchResult, error) {
	res := testing.Benchmark(wdcep.IngestBenchmark())
	if res.N == 0 {
		return nil, fmt.Errorf("cep bench: zero iterations")
	}
	nsPerEvent := float64(res.T.Nanoseconds()) / float64(res.N)
	out := &CEPBenchResult{
		Benchmark:    "BenchmarkEngineIngest",
		Iterations:   res.N,
		NsPerEvent:   nsPerEvent,
		EventsPerSec: 1e9 / nsPerEvent,
		BytesPerOp:   res.AllocedBytesPerOp(),
		AllocsPerOp:  res.AllocsPerOp(),
		PassBar:      cepPassEventsPerSec,
	}
	out.Pass = out.EventsPerSec >= cepPassEventsPerSec && out.AllocsPerOp == 0
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("cep bench: %w", err)
		}
	}
	if !out.Pass {
		return out, fmt.Errorf("cep bench: %.0f events/sec (bar %.0f) with %d allocs/op",
			out.EventsPerSec, out.PassBar, out.AllocsPerOp)
	}
	return out, nil
}

// Render formats the perf verdict for humans.
func (r *CEPBenchResult) Render() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf(
		"wdcep ingest benchmark (%s, %d iterations)\n"+
			"  %.1f ns/event  =>  %.2fM events/sec  (bar %.0fM)\n"+
			"  %d B/op, %d allocs/op\n"+
			"  %s",
		r.Benchmark, r.Iterations,
		r.NsPerEvent, r.EventsPerSec/1e6, r.PassBar/1e6,
		r.BytesPerOp, r.AllocsPerOp, verdict)
}
