// Command wdbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index) and prints them. The
// -paper flag runs the ZK-2201 case study with the paper's original
// watchdog parameters (1s interval, 6s timeout — detection around seven
// seconds) instead of the scaled-down defaults.
//
// With -scrape <host:port>, wdbench snapshots a running daemon's wdobs
// /watchdog endpoint before and after the experiment run and prints the
// delta, so the cost a benchmark run imposes on a live watchdog is visible
// next to the tables it produces.
//
// -exp cep runs the wdcep engine ingest benchmark and (with -cep-out) writes
// the machine-readable perf verdict CI commits as BENCH_wdcep.json; it exits
// nonzero below the 1M events/sec bar or with a non-zero steady-state
// allocation rate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gowatchdog/internal/experiment"
	"gowatchdog/internal/wdobs"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1|table2|zk2201|context|validate|disk|overhead|reduction|cep|kvsload|all")
		paper  = flag.Bool("paper", false, "use the paper's 1s/6s watchdog parameters for zk2201")
		scrape = flag.String("scrape", "", "wdobs address to snapshot before and after the run")
		cepOut = flag.String("cep-out", "", "write the wdcep perf verdict (BENCH_wdcep.json) here when running -exp cep")
		kvsOut = flag.String("kvs-out", "", "write the kvs serving-path perf verdict (BENCH_kvs.json) here when running -exp kvsload")
	)
	flag.Parse()

	var before *wdobs.Snapshot
	if *scrape != "" {
		var err error
		if before, err = scrapeSnapshot(*scrape); err != nil {
			log.Fatalf("wdbench: scrape %s: %v", *scrape, err)
		}
	}
	if *scrape != "" {
		defer func() {
			after, err := scrapeSnapshot(*scrape)
			if err != nil {
				log.Printf("wdbench: scrape %s: %v", *scrape, err)
				return
			}
			printScrapeDelta(*scrape, before, after)
		}()
	}

	scratch, err := os.MkdirTemp("", "wdbench-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	run := func(name string, fn func() (interface{ Render() string }, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			log.Fatalf("wdbench: %s: %v", name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (interface{ Render() string }, error) {
		return experiment.RunTable1(filepath.Join(scratch, "t1"), 0)
	})
	run("table2", func() (interface{ Render() string }, error) {
		return experiment.RunTable2(filepath.Join(scratch, "t2"), 0)
	})
	run("zk2201", func() (interface{ Render() string }, error) {
		interval, timeout := time.Duration(0), time.Duration(0)
		if *paper {
			interval, timeout = time.Second, 6*time.Second
			fmt.Println("(running zk2201 with paper parameters: 1s interval / 6s timeout; this takes ~30s)")
		}
		return experiment.RunZK2201(filepath.Join(scratch, "zk"), interval, timeout)
	})
	run("context", func() (interface{ Render() string }, error) {
		return experiment.RunContextAblation(filepath.Join(scratch, "ctx"), 0)
	})
	run("validate", func() (interface{ Render() string }, error) {
		return experiment.RunValidationChain(filepath.Join(scratch, "val"), 0)
	})
	run("disk", func() (interface{ Render() string }, error) {
		return experiment.RunDiskChecker(filepath.Join(scratch, "disk"), 0)
	})
	run("coverage", func() (interface{ Render() string }, error) {
		return experiment.RunCheckerCoverage(filepath.Join(scratch, "cov"), 0)
	})
	run("overhead", func() (interface{ Render() string }, error) {
		return experiment.RunOverhead(filepath.Join(scratch, "oh"), 0)
	})
	run("cep", func() (interface{ Render() string }, error) {
		return runCEPBench(*cepOut)
	})
	run("kvsload", func() (interface{ Render() string }, error) {
		return runKVSLoadBench(filepath.Join(scratch, "kvsload"), *kvsOut)
	})
	run("reduction", func() (interface{ Render() string }, error) {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		root, err := experiment.FindModuleRoot(wd)
		if err != nil {
			return nil, err
		}
		return experiment.RunReduction(root)
	})
}

// scrapeSnapshot fetches one /watchdog snapshot from a wdobs server with an
// explicit timeout and a single backoff-delayed retry.
func scrapeSnapshot(addr string) (*wdobs.Snapshot, error) {
	return wdobs.NewScrapeClient(3 * time.Second).Snapshot(addr)
}

// printScrapeDelta summarizes what the observed daemon's watchdog did over
// the benchmark window.
func printScrapeDelta(addr string, before, after *wdobs.Snapshot) {
	window := after.Time.Sub(before.Time).Round(time.Millisecond)
	fmt.Printf("watchdog activity at %s over the %v run window:\n", addr, window)
	fmt.Printf("  reports %d -> %d (+%d), alarms %d -> %d (+%d), journal events +%d\n",
		before.Reports, after.Reports, after.Reports-before.Reports,
		before.Alarms, after.Alarms, after.Alarms-before.Alarms,
		after.JournalSeq-before.JournalSeq)
	prev := map[string]wdobs.CheckerSnapshot{}
	for _, c := range before.Checkers {
		prev[c.Name] = c
	}
	for _, c := range after.Checkers {
		p := prev[c.Name]
		if c.Runs == p.Runs && c.Abnormal == p.Abnormal {
			continue
		}
		fmt.Printf("  %-28s +%d runs (+%d abnormal), now %s, p99 %v\n",
			c.Name, c.Runs-p.Runs, c.Abnormal-p.Abnormal, c.Status,
			time.Duration(c.Latency.P99NS).Round(time.Microsecond))
	}
}
