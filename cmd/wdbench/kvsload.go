package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gowatchdog/internal/kvs"
	"gowatchdog/internal/kvsload"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdruntime"
)

// The kvsload experiment drives the full serving stack (TCP server,
// pipelined wire protocol, group-committed WAL) to saturation with wdload's
// engine, once without any watchdog and once with the complete generated
// suite running at production cadence, and scores the throughput delta
// against the paper's <5% overhead claim (§3.2) end to end rather than on
// the storage API alone.
const (
	// kvsLoadConns/Depth/OpsPerRun shape each measured run: 64 pipelined
	// connections, 64-deep windows, 256k requests — five trials per arm put
	// >2.5M total requests behind the committed verdict. Best-of-trials per
	// arm: scheduler/GC jitter only ever subtracts throughput, so the max
	// converges to the true ceiling as trials grow.
	kvsLoadConns     = 64
	kvsLoadDepth     = 64
	kvsLoadOpsPerRun = 256_000
	kvsLoadTrials    = 5
	kvsLoadKeySpace  = 16_384
	kvsLoadValueSize = 64

	// kvsPassOverheadPct is the watchdog-on throughput regression bar.
	kvsPassOverheadPct = 5.0
	// kvsPassFloorOpsPerSec is the absolute throughput floor for the
	// watchdog-on arm — a backstop so the overhead ratio cannot pass by
	// both arms collapsing together.
	kvsPassFloorOpsPerSec = 100_000.0
)

// KVSArm is one configuration's best-of-trials measurement.
type KVSArm struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
}

// KVSBenchResult is the machine-readable kvs serving-path perf verdict,
// written to BENCH_kvs.json and gated on in CI.
type KVSBenchResult struct {
	Conns       int     `json:"conns"`
	Depth       int     `json:"pipeline_depth"`
	OpsPerRun   int64   `json:"ops_per_run"`
	Trials      int     `json:"trials_per_arm"`
	TotalOps    int64   `json:"total_ops"`
	Mix         string  `json:"mix"`
	ValueSize   int     `json:"value_size"`
	KeySpace    int     `json:"key_space"`
	Off         KVSArm  `json:"watchdog_off"`
	On          KVSArm  `json:"watchdog_on"`
	OverheadPct float64 `json:"overhead_pct"`
	// OverheadBarPct and FloorOpsPerSec echo the thresholds the verdict
	// was scored against.
	OverheadBarPct float64 `json:"pass_bar_overhead_pct"`
	FloorOpsPerSec float64 `json:"pass_floor_ops_per_sec"`
	Pass           bool    `json:"pass"`
}

// Render formats the perf verdict for humans.
func (r *KVSBenchResult) Render() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	arm := func(name string, a KVSArm) string {
		return fmt.Sprintf("  %-12s %8.0f ops/sec  p50 %-10v p99 %-10v (%d ops, %d errors)",
			name, a.OpsPerSec,
			time.Duration(a.P50NS).Round(time.Microsecond),
			time.Duration(a.P99NS).Round(time.Microsecond),
			a.Ops, a.Errors)
	}
	return fmt.Sprintf(
		"kvs serving-path benchmark (%d conns x depth %d, %s, best of %d trials per arm, %d total ops)\n%s\n%s\n"+
			"  overhead     %+.2f%% (bar %.0f%%, floor %.0f ops/sec)\n  %s",
		r.Conns, r.Depth, r.Mix, r.Trials, r.TotalOps,
		arm("watchdog off", r.Off), arm("watchdog on", r.On),
		r.OverheadPct, r.OverheadBarPct, r.FloorOpsPerSec, verdict)
}

// runKVSLoadBench measures the paired arms, alternating them across trials
// so machine drift lands on both sides, and writes the JSON verdict.
func runKVSLoadBench(scratch, outPath string) (*KVSBenchResult, error) {
	mix := kvsload.Mix{Get: 70, Set: 25, Scan: 5}
	out := &KVSBenchResult{
		Conns:          kvsLoadConns,
		Depth:          kvsLoadDepth,
		OpsPerRun:      kvsLoadOpsPerRun,
		Trials:         kvsLoadTrials,
		Mix:            mix.String(),
		ValueSize:      kvsLoadValueSize,
		KeySpace:       kvsLoadKeySpace,
		OverheadBarPct: kvsPassOverheadPct,
		FloorOpsPerSec: kvsPassFloorOpsPerSec,
	}
	// One unmeasured run first: the initial run on a cold machine (page
	// cache, ext4 journal) reads consistently slower than steady state, and
	// that drift must not land in either arm.
	if _, err := runKVSLoadArm(filepath.Join(scratch, "kvs-warmup"), false, mix); err != nil {
		return nil, fmt.Errorf("kvs bench warmup: %w", err)
	}
	for trial := 0; trial < kvsLoadTrials; trial++ {
		// ABBA ordering: alternate which arm goes first each trial so any
		// residual machine drift cancels instead of crediting one side.
		order := []bool{false, true}
		if trial%2 == 1 {
			order = []bool{true, false}
		}
		for _, on := range order {
			dir := filepath.Join(scratch, fmt.Sprintf("kvs-on%v-t%d", on, trial))
			res, err := runKVSLoadArm(dir, on, mix)
			if err != nil {
				return nil, fmt.Errorf("kvs bench (watchdog=%v trial %d): %w", on, trial, err)
			}
			if res.Errors > 0 {
				return nil, fmt.Errorf("kvs bench (watchdog=%v trial %d): %d request errors", on, trial, res.Errors)
			}
			out.TotalOps += res.Ops
			arm := &out.Off
			if on {
				arm = &out.On
			}
			if res.OpsPerSec > arm.OpsPerSec {
				*arm = KVSArm{
					OpsPerSec: res.OpsPerSec,
					P50NS:     res.P50.Nanoseconds(),
					P99NS:     res.P99.Nanoseconds(),
					Ops:       res.Ops,
					Errors:    res.Errors,
				}
			}
		}
	}
	out.OverheadPct = 100 * (out.Off.OpsPerSec - out.On.OpsPerSec) / out.Off.OpsPerSec
	out.Pass = out.OverheadPct <= kvsPassOverheadPct && out.On.OpsPerSec >= kvsPassFloorOpsPerSec
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("kvs bench: %w", err)
		}
	}
	if !out.Pass {
		return out, fmt.Errorf("kvs bench: %.2f%% overhead (bar %.0f%%), on-arm %.0f ops/sec (floor %.0f)",
			out.OverheadPct, kvsPassOverheadPct, out.On.OpsPerSec, kvsPassFloorOpsPerSec)
	}
	return out, nil
}

// runKVSLoadArm boots a disk-backed store and server, optionally with the
// generated watchdog suite at production cadence (composed through
// wdruntime, like a real deployment), and drives one saturation run.
func runKVSLoadArm(dir string, watchdogOn bool, mix kvsload.Mix) (kvsload.Result, error) {
	var factory *watchdog.Factory
	if watchdogOn {
		factory = watchdog.NewFactory()
	}
	// Two deviations from the deployment defaults, both to keep the paired
	// comparison CPU-bound and repeatable enough for a 5% gate:
	//   - SyncNone: with group commit on (the default), throughput is bound
	//     by fsync latency, which on shared/virtualized storage swings by
	//     2x run to run — noise that buries any watchdog signal. Watchdog
	//     cost lives on the CPU path (context hooks, driver scheduling,
	//     gauge updates), which this still measures on every request;
	//     group-commit durability is covered by its own crash-consistency
	//     tests and stays the serving default.
	//   - FlushThresholdBytes past the run volume: mid-run flush and
	//     compaction timing decides how many preads a GET costs, the other
	//     big variance source. Both arms measure the same path: TCP
	//     pipeline, WAL append, memtable.
	store, err := kvs.Open(kvs.Config{
		Dir:                 dir,
		WatchdogFactory:     factory,
		Sync:                kvs.SyncNone,
		FlushThresholdBytes: 1 << 30,
	})
	if err != nil {
		return kvsload.Result{}, err
	}
	defer store.Close()
	store.Start()
	srv, err := kvs.Serve("127.0.0.1:0", store)
	if err != nil {
		return kvsload.Result{}, err
	}
	defer srv.Close()

	if watchdogOn {
		shadow, err := wdio.NewFS(kvs.ShadowDirFor(dir), 0)
		if err != nil {
			return kvsload.Result{}, err
		}
		// Production cadence: the wdruntime default 1s interval, the same
		// rate kvsd deploys with — the paper's overhead claim is about
		// checkers running out-of-band at deployment settings, not a
		// stress-rate tick.
		rt, err := wdruntime.New(
			wdruntime.WithFactory(factory),
			wdruntime.WithRegistry(store.Metrics()),
			wdruntime.WithTimeout(2*time.Second),
		)
		if err != nil {
			return kvsload.Result{}, err
		}
		store.InstallWatchdog(rt.Driver(), shadow)
		if err := rt.Start(context.Background()); err != nil {
			return kvsload.Result{}, err
		}
		defer rt.Close()
	}

	return kvsload.Run(context.Background(), kvsload.Config{
		Addr:      srv.Addr(),
		Conns:     kvsLoadConns,
		Depth:     kvsLoadDepth,
		Ops:       kvsLoadOpsPerRun,
		Mix:       mix,
		ValueSize: kvsLoadValueSize,
		KeySpace:  kvsLoadKeySpace,
		Seed:      1,
		Preload:   -1,
	})
}
