// Command wdload drives a kvs server with pipelined, multi-connection load
// and reports throughput plus latency percentiles.
//
// Closed-loop saturation run (the wdbench kvsload configuration):
//
//	wdload -addr 127.0.0.1:7070 -conns 64 -depth 64 -ops 1000000
//
// Open-loop run at a fixed arrival rate (latency measured from the intended
// send time, so queueing delay shows up in the tail):
//
//	wdload -addr 127.0.0.1:7070 -conns 16 -rate 50000 -duration 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gowatchdog/internal/kvsload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "kvs server address")
		conns     = flag.Int("conns", 8, "concurrent connections")
		depth     = flag.Int("depth", 64, "pipeline window per connection")
		ops       = flag.Int64("ops", 0, "total request budget (0 = run for -duration)")
		duration  = flag.Duration("duration", 10*time.Second, "run length when -ops is 0")
		mixSpec   = flag.String("mix", "get=70,set=25,scan=5", "request blend weights")
		valueSize = flag.Int("value", 64, "SET value size in bytes")
		keySpace  = flag.Int("keys", 65536, "distinct key count")
		seed      = flag.Int64("seed", 1, "PRNG seed for keys and op mix")
		rate      = flag.Int("rate", 0, "open-loop aggregate ops/sec (0 = closed loop)")
		preload   = flag.Int("preload", -1, "keys to SET before the run (-1 = whole keyspace, 0 = none)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		scanLimit = flag.Int("scan-limit", 10, "SCAN response size limit")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	mix, err := kvsload.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := kvsload.Config{
		Addr:       *addr,
		Conns:      *conns,
		Depth:      *depth,
		Ops:        *ops,
		Duration:   *duration,
		Mix:        mix,
		ValueSize:  *valueSize,
		KeySpace:   *keySpace,
		Seed:       *seed,
		RatePerSec: *rate,
		Preload:    *preload,
		Timeout:    *timeout,
		ScanLimit:  *scanLimit,
	}
	if *ops > 0 {
		cfg.Duration = 0 // budget-bounded run; no wall-clock cutoff
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := kvsload.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wdload: %v\n", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
	} else {
		fmt.Print(res.Render())
	}
	if err != nil {
		os.Exit(1)
	}
}
