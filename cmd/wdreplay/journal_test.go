package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gowatchdog/internal/wdobs"
)

func TestRenderJournalFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "detections.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := wdobs.ReadJournal(f)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("fixture has %d events, want 6", len(events))
	}

	var out strings.Builder
	renderJournal(&out, events)
	got := out.String()
	for _, want := range []string{
		"kvs.compaction",
		"stuck",
		"liveness timeout after 400ms",
		"@kvs.compactPartition",
		"(consecutive=3, validated=true)",
		"6 events, 1 alarms, 2 checkers",
		"last status healthy",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered journal missing %q:\n%s", want, got)
		}
	}
}

func TestRenderJournalEmpty(t *testing.T) {
	var out strings.Builder
	renderJournal(&out, nil)
	if !strings.Contains(out.String(), "empty journal") {
		t.Errorf("empty render = %q", out.String())
	}
}
