package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdobs"
)

func TestRenderJournalFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "detections.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := wdobs.ReadJournal(f)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("fixture has %d events, want 6", len(events))
	}

	var out strings.Builder
	renderJournal(&out, events)
	got := out.String()
	for _, want := range []string{
		"kvs.compaction",
		"stuck",
		"liveness timeout after 400ms",
		"@kvs.compactPartition",
		"(consecutive=3, validated=true)",
		"6 events, 1 alarms, 2 checkers",
		"last status healthy",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered journal missing %q:\n%s", want, got)
		}
	}
}

func TestRenderJournalEmpty(t *testing.T) {
	var out strings.Builder
	renderJournal(&out, nil)
	if !strings.Contains(out.String(), "empty journal") {
		t.Errorf("empty render = %q", out.String())
	}
}

// TestJournalDamageReport: a journal ending in a torn final write replays the
// intact prefix and reports the truncation instead of silently skipping it.
func TestJournalDamageReport(t *testing.T) {
	intact, err := os.ReadFile(filepath.Join("testdata", "detections.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a daemon killed mid-append: the last line is cut short.
	torn := append(append([]byte{}, intact...), []byte(`{"seq":7,"kind":"rep`)...)
	events, stats, err := wdobs.ReadJournalLenient(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("ReadJournalLenient: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("replayed %d events from the torn journal, want the 6 intact ones", len(events))
	}

	var out strings.Builder
	reportJournalDamage(&out, stats)
	got := out.String()
	if !strings.Contains(got, "torn write") || !strings.Contains(got, "6 of 7 lines replayed") {
		t.Errorf("damage report = %q, want the torn-write warning with counts", got)
	}

	// Multi-line damage reports the first malformed line number.
	out.Reset()
	reportJournalDamage(&out, wdobs.JournalReadStats{Lines: 9, Events: 6, Malformed: 3, FirstMalformedLine: 4, TornTail: true})
	got = out.String()
	if !strings.Contains(got, "3 malformed line(s)") || !strings.Contains(got, "first at line 4") {
		t.Errorf("multi-damage report = %q", got)
	}

	// A clean read prints nothing.
	out.Reset()
	reportJournalDamage(&out, wdobs.JournalReadStats{Lines: 6, Events: 6})
	if out.Len() != 0 {
		t.Errorf("clean read produced a damage report: %q", out.String())
	}
}

// TestRenderJournalCEPAndRecovery pins the KindCEP/KindRecovery annotations.
func TestRenderJournalCEPAndRecovery(t *testing.T) {
	events := []wdobs.Event{
		{Seq: 1, Kind: wdobs.KindCEP,
			Report:      watchdog.Report{Checker: "wdcep.wal-streak", Status: watchdog.StatusError},
			Rule:        "wal-streak",
			Consecutive: 3},
		{Seq: 2, Kind: wdobs.KindRecovery,
			Report:  watchdog.Report{Checker: "kvs.wal", Status: watchdog.StatusError},
			Outcome: "escalated", Action: "kvs.restart", Attempt: 2},
	}
	var out strings.Builder
	renderJournal(&out, events)
	got := out.String()
	for _, want := range []string{
		"(rule=wal-streak, count=3)",
		"(escalated, action=kvs.restart, attempt=2)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered journal missing %q:\n%s", want, got)
		}
	}
}

// TestReplayRules runs a journal through a rule file offline and checks the
// fired rules print with their contributing event windows.
func TestReplayRules(t *testing.T) {
	rulesPath := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(rulesPath, []byte(`{"rules":[
		{"name":"streak","kind":"consecutive","count":3,"match":{"checker_prefix":"kvs.wal"}}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	var events []wdobs.Event
	for i := 0; i < 4; i++ {
		events = append(events, wdobs.Event{
			Seq:  int64(i + 1),
			Kind: wdobs.KindReport,
			Report: watchdog.Report{
				Checker: "kvs.wal",
				Status:  watchdog.StatusError,
				Time:    base.Add(time.Duration(i) * time.Second),
			},
		})
	}
	var out strings.Builder
	if err := replayRules(&out, rulesPath, events); err != nil {
		t.Fatalf("replayRules: %v", err)
	}
	got := out.String()
	for _, want := range []string{"1 firing(s)", "streak", "count=3", "[kvs.wal]"} {
		if !strings.Contains(got, want) {
			t.Errorf("replay output missing %q:\n%s", want, got)
		}
	}

	if err := replayRules(&out, filepath.Join(t.TempDir(), "missing.json"), events); err == nil {
		t.Fatal("missing rule file should error")
	}
}
