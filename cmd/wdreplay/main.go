// Command wdreplay inspects watchdog detection artifacts. It reads §5.2
// failure capsules — printing the pinpointed site and the captured
// failure-inducing context — and wdobs JSONL detection journals, rendering
// the detection timeline a daemon streamed with -journal.
//
// Usage:
//
//	wdreplay failure.json
//	wdreplay -dir /var/kvs/capsules        # summarize a whole directory
//	wdreplay detections.jsonl              # journal timeline (by extension)
//	wdreplay -journal somefile             # journal timeline (forced)
//	wdreplay -rules rules.json detections.jsonl   # replay through wdcep rules
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gowatchdog/internal/capsule"
)

func main() {
	dir := flag.String("dir", "", "summarize every capsule in this directory")
	journal := flag.Bool("journal", false, "treat the file as a wdobs JSONL detection journal")
	rules := flag.String("rules", "", "wdcep JSON rule file: replay the journal through the temporal rule engine and print fired rules")
	flag.Parse()

	switch {
	case *dir != "":
		if err := summarizeDir(*dir); err != nil {
			log.Fatalf("wdreplay: %v", err)
		}
	case flag.NArg() == 1:
		path := flag.Arg(0)
		var err error
		if *journal || *rules != "" || strings.HasSuffix(path, ".jsonl") {
			err = showJournal(path, *rules)
		} else {
			err = show(path)
		}
		if err != nil {
			log.Fatalf("wdreplay: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarizeDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("no capsules found")
		return nil
	}
	for _, name := range names {
		c, err := capsule.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fmt.Printf("%-40s  (unreadable: %v)\n", name, err)
			continue
		}
		fmt.Printf("%-40s  %-8s  %-12s  %s\n", name, c.Status, c.Checker, c.Site)
	}
	return nil
}

func show(path string) error {
	c, err := capsule.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("checker:  %s\n", c.Checker)
	fmt.Printf("status:   %s\n", c.Status)
	if c.Error != "" {
		fmt.Printf("error:    %s\n", c.Error)
	}
	fmt.Printf("site:     %s\n", c.Site)
	fmt.Printf("time:     %s  (checker latency %v)\n", c.Time, c.Latency)
	ctx, err := c.RestoreContext()
	if err != nil {
		return fmt.Errorf("restore context: %w", err)
	}
	keys := make([]string, 0, len(c.Payload))
	for k := range c.Payload {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("context:  %d captured values (restored, ready=%v)\n", len(keys), ctx.Ready())
	for _, k := range keys {
		v, _ := ctx.Get(k)
		switch tv := v.(type) {
		case []byte:
			fmt.Printf("  %-14s = %q (%d bytes)\n", k, truncate(string(tv), 60), len(tv))
		default:
			fmt.Printf("  %-14s = %v\n", k, v)
		}
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
