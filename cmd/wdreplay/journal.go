package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdobs"
)

// showJournal renders a wdobs JSONL detection journal: the event timeline
// followed by a per-checker rollup. Reading is lenient — journals from crashed
// daemons routinely end in a torn final write — but damage is reported, never
// silently skipped. With a rule file, the journal is additionally replayed
// through the wdcep engine offline and the fired rules are printed with their
// contributing event windows.
func showJournal(path, rulesPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, stats, err := wdobs.ReadJournalLenient(f)
	if err != nil {
		return err
	}
	renderJournal(os.Stdout, events)
	reportJournalDamage(os.Stdout, stats)
	if rulesPath != "" {
		if err := replayRules(os.Stdout, rulesPath, events); err != nil {
			return err
		}
	}
	return nil
}

// replayRules runs the journal through a fresh wdcep engine under the rule
// file and prints every firing: what fired, when, and the evidence window it
// fired on. Replay evaluates after every event, so firings land at the
// earliest event that completes a rule — a tighter bound than the live
// engine's batched evaluation.
func replayRules(w io.Writer, rulesPath string, events []wdobs.Event) error {
	rules, err := wdcep.LoadRules(rulesPath)
	if err != nil {
		return err
	}
	stream := make([]wdcep.Event, len(events))
	for i, e := range events {
		stream[i] = wdobs.CEPEvent(e)
	}
	firings, err := wdcep.Replay(rules, stream)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nreplayed %d event(s) through %d rule(s): %d firing(s)\n",
		len(stream), len(rules), len(firings))
	for _, f := range firings {
		fmt.Fprintf(w, "  %s  %-20s %-8s count=%d  window %s .. %s",
			f.Time.Format("15:04:05.000"), f.Rule, f.Status, f.Count,
			f.First.Format("15:04:05.000"), f.Last.Format("15:04:05.000"))
		if len(f.Checkers) > 0 {
			fmt.Fprintf(w, "  [%s]", strings.Join(f.Checkers, " "))
		}
		fmt.Fprintln(w)
		if f.Detail != "" {
			fmt.Fprintf(w, "      %s\n", f.Detail)
		}
	}
	return nil
}

// reportJournalDamage prints what the lenient reader had to skip.
func reportJournalDamage(w io.Writer, stats wdobs.JournalReadStats) {
	if stats.Malformed == 0 {
		return
	}
	if stats.TornTail && stats.Malformed == 1 {
		fmt.Fprintf(w, "\nwarning: final line truncated (torn write — daemon likely died mid-append); %d of %d lines replayed\n",
			stats.Events, stats.Lines)
		return
	}
	fmt.Fprintf(w, "\nwarning: %d malformed line(s) skipped (first at line %d", stats.Malformed, stats.FirstMalformedLine)
	if stats.TornTail {
		fmt.Fprint(w, ", final line truncated — torn write")
	}
	fmt.Fprintf(w, "); %d of %d lines replayed\n", stats.Events, stats.Lines)
}

func renderJournal(w io.Writer, events []wdobs.Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "empty journal")
		return
	}
	type rollup struct {
		events, alarms int
		last           string
	}
	byChecker := map[string]*rollup{}
	var alarms int
	for _, e := range events {
		r := byChecker[e.Report.Checker]
		if r == nil {
			r = &rollup{}
			byChecker[e.Report.Checker] = r
		}
		r.events++
		r.last = e.Report.Status.String()
		line := fmt.Sprintf("%5d  %s  %-7s %-24s %s",
			e.Seq, e.Report.Time.Format("15:04:05.000"), e.Kind,
			e.Report.Checker, e.Report.Status)
		switch e.Kind {
		case wdobs.KindAlarm:
			alarms++
			r.alarms++
			line += fmt.Sprintf("  (consecutive=%d", e.Consecutive)
			if e.Validated != nil {
				line += fmt.Sprintf(", validated=%v", *e.Validated)
			}
			line += ")"
		case wdobs.KindCEP:
			line += fmt.Sprintf("  (rule=%s, count=%d)", e.Rule, e.Consecutive)
		case wdobs.KindRecovery:
			line += fmt.Sprintf("  (%s", e.Outcome)
			if e.Action != "" {
				line += fmt.Sprintf(", action=%s", e.Action)
			}
			if e.Attempt > 0 {
				line += fmt.Sprintf(", attempt=%d", e.Attempt)
			}
			line += ")"
		}
		if e.Report.Err != nil {
			line += "  " + truncate(e.Report.Err.Error(), 60)
		}
		if !e.Report.Site.IsZero() {
			line += fmt.Sprintf("  @%s", e.Report.Site)
		}
		fmt.Fprintln(w, line)
	}

	fmt.Fprintf(w, "\n%d events, %d alarms, %d checkers\n", len(events), alarms, len(byChecker))
	names := make([]string, 0, len(byChecker))
	for n := range byChecker {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := byChecker[n]
		fmt.Fprintf(w, "  %-24s %3d events  %2d alarms  last status %s\n",
			n, r.events, r.alarms, r.last)
	}
}
