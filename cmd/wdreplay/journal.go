package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"gowatchdog/internal/wdobs"
)

// showJournal renders a wdobs JSONL detection journal: the event timeline
// followed by a per-checker rollup. Reading is lenient — journals from crashed
// daemons routinely end in a torn final write — but damage is reported, never
// silently skipped.
func showJournal(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, stats, err := wdobs.ReadJournalLenient(f)
	if err != nil {
		return err
	}
	renderJournal(os.Stdout, events)
	reportJournalDamage(os.Stdout, stats)
	return nil
}

// reportJournalDamage prints what the lenient reader had to skip.
func reportJournalDamage(w io.Writer, stats wdobs.JournalReadStats) {
	if stats.Malformed == 0 {
		return
	}
	if stats.TornTail && stats.Malformed == 1 {
		fmt.Fprintf(w, "\nwarning: final line truncated (torn write — daemon likely died mid-append); %d of %d lines replayed\n",
			stats.Events, stats.Lines)
		return
	}
	fmt.Fprintf(w, "\nwarning: %d malformed line(s) skipped (first at line %d", stats.Malformed, stats.FirstMalformedLine)
	if stats.TornTail {
		fmt.Fprint(w, ", final line truncated — torn write")
	}
	fmt.Fprintf(w, "); %d of %d lines replayed\n", stats.Events, stats.Lines)
}

func renderJournal(w io.Writer, events []wdobs.Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "empty journal")
		return
	}
	type rollup struct {
		events, alarms int
		last           string
	}
	byChecker := map[string]*rollup{}
	var alarms int
	for _, e := range events {
		r := byChecker[e.Report.Checker]
		if r == nil {
			r = &rollup{}
			byChecker[e.Report.Checker] = r
		}
		r.events++
		r.last = e.Report.Status.String()
		line := fmt.Sprintf("%5d  %s  %-7s %-24s %s",
			e.Seq, e.Report.Time.Format("15:04:05.000"), e.Kind,
			e.Report.Checker, e.Report.Status)
		if e.Kind == wdobs.KindAlarm {
			alarms++
			r.alarms++
			line += fmt.Sprintf("  (consecutive=%d", e.Consecutive)
			if e.Validated != nil {
				line += fmt.Sprintf(", validated=%v", *e.Validated)
			}
			line += ")"
		}
		if e.Report.Err != nil {
			line += "  " + truncate(e.Report.Err.Error(), 60)
		}
		if !e.Report.Site.IsZero() {
			line += fmt.Sprintf("  @%s", e.Report.Site)
		}
		fmt.Fprintln(w, line)
	}

	fmt.Fprintf(w, "\n%d events, %d alarms, %d checkers\n", len(events), alarms, len(byChecker))
	names := make([]string, 0, len(byChecker))
	for n := range byChecker {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := byChecker[n]
		fmt.Fprintf(w, "  %-24s %3d events  %2d alarms  last status %s\n",
			n, r.events, r.alarms, r.last)
	}
}
