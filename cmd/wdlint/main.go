// Command wdlint statically verifies watchdog hygiene (§3.2–§3.3): checker
// isolation, context synchronization, fate-sharing, driver configuration,
// and generated-checker freshness.
//
// Usage:
//
//	wdlint ./...                     # lint the whole module
//	wdlint ./internal/kvs            # one package
//	wdlint -json ./...               # machine-readable findings
//	wdlint -severity error ./...     # fail only on errors
//	wdlint -list                     # describe the analyzers
//
// Exit status is 1 when any finding at or above the -severity gate remains
// after //wdlint:ignore filtering, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"gowatchdog/internal/wdlint"
)

func main() {
	var (
		jsonMode = flag.Bool("json", false, "emit findings as JSON")
		sevGate  = flag.String("severity", "warn", "fail on findings at or above this severity (info, warn, error)")
		list     = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range wdlint.All() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	gate, err := wdlint.ParseSeverity(*sevGate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := wdlint.Run(".", patterns, wdlint.All())
	if err != nil {
		// Loader errors already carry the wdlint: prefix.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonMode {
		data, err := wdlint.MarshalDiags(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wdlint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", data)
	} else {
		for _, d := range diags {
			fmt.Println(d)
			for _, r := range d.Related {
				fmt.Printf("\t%s: %s\n", r.Pos, r.Message)
			}
		}
	}

	failing := 0
	for _, d := range diags {
		if d.Severity >= gate {
			failing++
		}
	}
	if failing > 0 {
		if !*jsonMode {
			fmt.Fprintf(os.Stderr, "wdlint: %d finding(s) at or above %s\n", failing, gate)
		}
		os.Exit(1)
	}
}
