// Command wdstat renders a live view of a daemon's watchdog state from its
// wdobs /watchdog endpoint — the operator-facing half of the observability
// subsystem. One-shot by default; -watch polls continuously like `watch(1)`.
//
// Usage:
//
//	wdstat -addr 127.0.0.1:9120
//	wdstat -addr 127.0.0.1:9120 -watch -every 2s
//	wdstat -addr 127.0.0.1:9120 -json
//	wdstat -episodes wdsuper-episodes.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdmesh"
	"gowatchdog/internal/wdobs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9120", "daemon observability address (host:port)")
		watch    = flag.Bool("watch", false, "poll continuously instead of one-shot")
		every    = flag.Duration("every", time.Second, "poll interval with -watch")
		rawJSON  = flag.Bool("json", false, "print the raw JSON snapshot and exit")
		timeout  = flag.Duration("timeout", 3*time.Second, "per-attempt HTTP timeout (one retry with backoff on transient failures)")
		episodes = flag.String("episodes", "", "render a wdsuper outage-episode ledger file offline and exit (no daemon needed)")
	)
	flag.Parse()

	if *episodes != "" {
		eps, torn, err := episode.Read(*episodes)
		if err != nil {
			fatal(err)
		}
		renderEpisodes(os.Stdout, episode.SnapshotOf(eps, torn, len(eps)))
		return
	}

	client := wdobs.NewScrapeClient(*timeout)

	if *rawJSON {
		body, err := client.RawSnapshot(*addr)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
		return
	}

	for {
		snap, err := client.Snapshot(*addr)
		if err != nil {
			if !*watch {
				fatal(err)
			}
			fmt.Printf("wdstat: %v\n", err)
		} else {
			if *watch {
				// Poor man's clear-screen keeps the dependency surface at zero.
				fmt.Print("\033[H\033[2J")
			}
			render(os.Stdout, *addr, snap)
		}
		if !*watch {
			if snap := snapOrNil(snap, err); snap != nil && !snap.Healthy {
				os.Exit(1)
			}
			return
		}
		time.Sleep(*every)
	}
}

func snapOrNil(s *wdobs.Snapshot, err error) *wdobs.Snapshot {
	if err != nil {
		return nil
	}
	return s
}

// render prints the snapshot as an aligned table.
func render(w io.Writer, addr string, snap *wdobs.Snapshot) {
	health := "HEALTHY"
	if !snap.Healthy {
		health = "UNHEALTHY"
	}
	fmt.Fprintf(w, "watchdog @ %s — %s  (reports=%d alarms=%d journal=%d)  %s\n",
		addr, health, snap.Reports, snap.Alarms, snap.JournalSeq,
		snap.Time.Format("15:04:05"))

	rows := [][]string{{
		"CHECKER", "STATUS", "RUNS", "ABN", "CONSEC", "TRANS", "STUCK",
		"BREAKER", "FLAPS", "P50", "P99", "CTX AGE", "LAST",
	}}
	checkers := append([]wdobs.CheckerSnapshot(nil), snap.Checkers...)
	sort.SliceStable(checkers, func(i, j int) bool { return checkers[i].Name < checkers[j].Name })
	for _, c := range checkers {
		status := c.Status.String()
		if c.Paused {
			status += " (paused)"
		}
		ctxAge := "never"
		if c.Context.StalenessNS >= 0 {
			ctxAge = shortDur(time.Duration(c.Context.StalenessNS))
		}
		last := ""
		if c.LastReport != nil && c.LastReport.Err != nil {
			last = c.LastReport.Err.Error()
			if len(last) > 40 {
				last = last[:37] + "..."
			}
		}
		rows = append(rows, []string{
			c.Name, status,
			fmt.Sprint(c.Runs), fmt.Sprint(c.Abnormal), fmt.Sprint(c.Consecutive),
			fmt.Sprint(c.Transitions), fmt.Sprint(c.Stuck),
			breakerCell(c), fmt.Sprint(c.Flaps),
			shortDur(time.Duration(c.Latency.P50NS)), shortDur(time.Duration(c.Latency.P99NS)),
			ctxAge, last,
		})
	}
	printTable(w, rows)
	if snap.Mesh != nil {
		renderMesh(w, snap.Mesh)
	}
	if snap.CEP != nil {
		renderCEP(w, snap.CEP)
	}
	if snap.Recovery != nil {
		fmt.Fprintf(w, "\nrecovery: events=%d dropped=%d\n",
			snap.Recovery.Events, snap.Recovery.Dropped)
	}
	if snap.Episodes != nil {
		renderEpisodes(w, snap.Episodes)
	}
}

// meshTopK bounds the mesh peer table: at cluster scale (hundreds to a
// thousand peers) the operator needs the abnormal links, not a thousand
// healthy rows.
const meshTopK = 10

// renderMesh prints the cluster health plane: a summary line, active cluster
// verdicts, and a table of at most meshTopK abnormal peers (non-ok
// observation, demoted link, or drops/failures on the link) ranked worst
// first, with the healthy remainder summarized to one line.
func renderMesh(w io.Writer, m *wdmesh.Snapshot) {
	fmt.Fprintf(w, "\nmesh: self=%s quorum=%d fanout=%d  peers=%d (alive=%d suspect=%d demoted=%d)  sent=%d recv=%d deltas=%d fullsync=%d drops=%d\n",
		m.Self, m.Quorum, m.Fanout, len(m.Peers), m.PeersAlive, m.PeersSuspect, m.PeersDemoted,
		m.MessagesSent, m.MessagesReceived, m.DeltaEntries, m.FullSyncs, m.QueueDrops)
	if t := m.Transport; t != nil {
		fmt.Fprintf(w, "mesh transport: reconnects=%d protocol-errors=%d oversized=%d\n",
			t.Reconnects, t.ProtocolErrors, t.OversizedFrames)
	}
	if len(m.Verdicts) > 0 {
		rows := [][]string{{"VERDICT", "KIND", "VOTES", "WORST", "SINCE"}}
		for _, v := range m.Verdicts {
			rows = append(rows, []string{
				v.Node, v.Kind, fmt.Sprint(v.Votes), v.Worst.String(), v.Since.Format("15:04:05"),
			})
		}
		printTable(w, rows)
	}

	abnormal := make([]wdmesh.PeerSnapshot, 0, len(m.Peers))
	for _, p := range m.Peers {
		if meshSeverity(p) > 0 {
			abnormal = append(abnormal, p)
		}
	}
	healthy := len(m.Peers) - len(abnormal)
	if len(abnormal) == 0 {
		fmt.Fprintf(w, "all %d peers healthy\n", len(m.Peers))
		return
	}
	sort.SliceStable(abnormal, func(i, j int) bool {
		si, sj := meshSeverity(abnormal[i]), meshSeverity(abnormal[j])
		if si != sj {
			return si > sj
		}
		if abnormal[i].SendFailures != abnormal[j].SendFailures {
			return abnormal[i].SendFailures > abnormal[j].SendFailures
		}
		if abnormal[i].QueueDrops != abnormal[j].QueueDrops {
			return abnormal[i].QueueDrops > abnormal[j].QueueDrops
		}
		return abnormal[i].Node < abnormal[j].Node
	})
	shown := abnormal
	if len(shown) > meshTopK {
		shown = shown[:meshTopK]
	}
	rows := [][]string{{"PEER", "OBS", "WORST", "SEQ", "HEARD", "DROPS", "RETRIES", "FAILS", "LINK"}}
	for _, p := range shown {
		heard := "never"
		if p.LastHeardNS >= 0 {
			heard = shortDur(time.Duration(p.LastHeardNS))
		}
		link := "ok"
		if p.Demoted {
			link = fmt.Sprintf("demoted x%d", p.ConsecFailures)
		} else if p.ConsecFailures > 0 {
			link = fmt.Sprintf("failing x%d", p.ConsecFailures)
		}
		rows = append(rows, []string{
			p.Node, p.Observation, p.Worst.String(), fmt.Sprint(p.Seq), heard,
			fmt.Sprint(p.QueueDrops), fmt.Sprint(p.SendRetries), fmt.Sprint(p.SendFailures), link,
		})
	}
	printTable(w, rows)
	if rest := len(abnormal) - len(shown); rest > 0 {
		fmt.Fprintf(w, "... and %d more abnormal peer(s)\n", rest)
	}
	if healthy > 0 {
		fmt.Fprintf(w, "... and %d healthy peer(s)\n", healthy)
	}
}

// meshSeverity ranks a peer link for the abnormal table: suspected
// observations outrank link trouble, which outranks backpressure residue.
func meshSeverity(p wdmesh.PeerSnapshot) int {
	switch {
	case p.Observation == wdmesh.ObsUnreachable:
		return 4
	case p.Observation == wdmesh.ObsAlarming:
		return 3
	case p.Demoted:
		return 2
	case p.QueueDrops > 0 || p.SendFailures > 0 || p.ConsecFailures > 0:
		return 1
	}
	return 0
}

// renderEpisodes prints the supervision plane's outage history: the ledger
// totals and one row per episode, newest last.
func renderEpisodes(w io.Writer, s *episode.Snapshot) {
	fmt.Fprintf(w, "\nepisodes: total=%d open=%d", s.Total, s.Open)
	if s.TornRecords > 0 {
		fmt.Fprintf(w, " torn=%d", s.TornRecords)
	}
	fmt.Fprintln(w)
	if len(s.Episodes) == 0 {
		return
	}
	rows := [][]string{{"ID", "DAEMON", "CAUSE", "OPENED", "RESTARTS", "RESOLUTION", "OUTAGE", "TO-HEALTHY"}}
	for _, e := range s.Episodes {
		resolution := "open"
		outage, healthy := "-", "-"
		if e.Closed {
			resolution = e.Resolution
			outage = shortDur(time.Duration(e.OutageNS))
			healthy = shortDur(time.Duration(e.HealthyNS))
		}
		if e.Adopted {
			resolution += " (adopted)"
		}
		rows = append(rows, []string{
			fmt.Sprint(e.ID), e.Daemon, e.Cause, e.OpenedAt.Format("15:04:05"),
			fmt.Sprint(e.Restarts), resolution, outage, healthy,
		})
	}
	printTable(w, rows)
}

// renderCEP prints the temporal-rule engine section: the stream counters and
// a per-rule fire table.
func renderCEP(w io.Writer, c *wdcep.Snapshot) {
	fmt.Fprintf(w, "\ncep: %d rules, %d fired  (published=%d dropped=%d evaluations=%d)\n",
		c.Rules, c.Fired, c.Published, c.Dropped, c.Evaluations)
	if len(c.RuleStats) == 0 {
		return
	}
	rows := [][]string{{"RULE", "KIND", "FIRED", "LAST"}}
	for _, r := range c.RuleStats {
		last := "-"
		if !r.LastFired.IsZero() {
			last = r.LastFired.Format("15:04:05")
		}
		rows = append(rows, []string{r.Name, string(r.Kind), fmt.Sprint(r.Fired), last})
	}
	printTable(w, rows)
}

// breakerCell renders a checker's circuit-breaker column: "-" when no breaker
// is configured, the state name otherwise, the retry countdown while open, and
// the cumulative trip count once there is one.
func breakerCell(c wdobs.CheckerSnapshot) string {
	if c.Breaker == "" {
		return "-"
	}
	cell := c.Breaker
	if c.BreakerRetryNS > 0 {
		cell += "(" + shortDur(time.Duration(c.BreakerRetryNS)) + ")"
	}
	if c.BreakerTrips > 0 {
		cell += fmt.Sprintf(" x%d", c.BreakerTrips)
	}
	return cell
}

// shortDur formats a duration with two significant units at most.
func shortDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func printTable(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wdstat: %v\n", err)
	os.Exit(1)
}
