package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdmesh"
	"gowatchdog/internal/wdobs"
)

// TestRenderGolden pins the operator-facing table layout, including the
// BREAKER and FLAPS columns added with the self-hardening loop: breaker state
// with retry countdown and trip count, "-" for checkers without a breaker,
// and the per-checker damped-alarm tally.
func TestRenderGolden(t *testing.T) {
	snap := &wdobs.Snapshot{
		Time:       time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Healthy:    false,
		Reports:    120,
		Alarms:     4,
		JournalSeq: 124,
		Checkers: []wdobs.CheckerSnapshot{
			{
				Name:        "kvs.wal",
				Status:      watchdog.StatusError,
				Runs:        41,
				Abnormal:    12,
				Consecutive: 1,
				Transitions: 9,
				Flaps:       5,
				LastReport:  &watchdog.Report{Err: errors.New("wal append: injected error")},
				Latency:     wdobs.LatencySummary{P50NS: 0, P99NS: int64(300 * time.Microsecond)},
				Context:     wdobs.ContextSnapshot{StalenessNS: -1},
			},
			{
				Name:           "kvs.flusher",
				Status:         watchdog.StatusSkipped,
				Runs:           40,
				Abnormal:       6,
				Consecutive:    3,
				Transitions:    4,
				Stuck:          6,
				Breaker:        "open",
				BreakerTrips:   2,
				BreakerRetryNS: int64(2500 * time.Millisecond),
				Latency:        wdobs.LatencySummary{P50NS: int64(1200 * time.Microsecond), P99NS: int64(2 * time.Second)},
				LastReport:     &watchdog.Report{Err: errors.New("checker still blocked from previous execution")},
				Context:        wdobs.ContextSnapshot{StalenessNS: int64(500 * time.Millisecond)},
			},
			{
				Name:    "kvs.indexer",
				Status:  watchdog.StatusHealthy,
				Runs:    42,
				Breaker: "closed",
				Latency: wdobs.LatencySummary{P50NS: int64(800 * time.Microsecond), P99NS: int64(1500 * time.Microsecond)},
				Context: wdobs.ContextSnapshot{StalenessNS: int64(50 * time.Millisecond)},
			},
		},
		CEP: &wdcep.Snapshot{
			Rules:       2,
			Published:   118,
			Dropped:     0,
			Evaluations: 40,
			Fired:       3,
			RingCap:     8192,
			RuleStats: []wdcep.RuleStat{
				{Name: "wal-streak", Kind: wdcep.KindConsecutive, Fired: 3,
					LastFired: time.Date(2026, 8, 5, 11, 59, 30, 0, time.UTC)},
				{Name: "cluster-spread", Kind: wdcep.KindDistinct, Fired: 0},
			},
		},
		Recovery: &wdobs.RecoverySnapshot{Events: 37, Dropped: 5},
		Episodes: &episode.Snapshot{
			Total: 2,
			Open:  1,
			Episodes: []episode.Episode{
				{
					ID: 1, Daemon: "kvsd", Cause: "signal:killed",
					OpenedAt: time.Date(2026, 8, 5, 11, 58, 0, 0, time.UTC),
					Restarts: 1, Closed: true, Resolution: episode.ResolutionHealthy,
					OutageNS:  int64(1200 * time.Millisecond),
					HealthyNS: int64(5200 * time.Millisecond),
					Adopted:   true,
				},
				{
					ID: 2, Daemon: "kvsd", Cause: "watchdog-trigger",
					OpenedAt: time.Date(2026, 8, 5, 11, 59, 50, 0, time.UTC),
				},
			},
			TornRecords: 1,
		},
	}

	var b strings.Builder
	render(&b, "test:9120", snap)
	got := b.String()

	// Column widths are byte-based (the table code pads on len), which is why
	// the µ rows carry one byte of extra pad.
	golden := strings.Join([]string{
		"watchdog @ test:9120 — UNHEALTHY  (reports=120 alarms=4 journal=124)  12:00:00",
		"CHECKER      STATUS   RUNS  ABN  CONSEC  TRANS  STUCK  BREAKER        FLAPS  P50     P99     CTX AGE  LAST",
		"kvs.flusher  skipped  40    6    3       4      6      open(2.5s) x2  0      1.2ms   2.0s    500.0ms  checker still blocked from previous e...",
		"kvs.indexer  healthy  42    0    0       0      0      closed         0      800µs  1.5ms   50.0ms",
		"kvs.wal      error    41    12   1       9      0      -              5      0       300µs  never    wal append: injected error",
		"",
		"cep: 2 rules, 3 fired  (published=118 dropped=0 evaluations=40)",
		"RULE            KIND         FIRED  LAST",
		"wal-streak      consecutive  3      11:59:30",
		"cluster-spread  distinct     0      -",
		"",
		"recovery: events=37 dropped=5",
		"",
		"episodes: total=2 open=1 torn=1",
		"ID  DAEMON  CAUSE             OPENED    RESTARTS  RESOLUTION         OUTAGE  TO-HEALTHY",
		"1   kvsd    signal:killed     11:58:00  1         healthy (adopted)  1.2s    5.2s",
		"2   kvsd    watchdog-trigger  11:59:50  0         open               -       -",
		"",
	}, "\n")
	if got != golden {
		t.Errorf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// TestRenderMeshGolden pins the mesh section's degradation at cluster scale:
// a 1000-peer snapshot renders as a summary line, the active verdicts, the
// top-K abnormal peers ranked worst first, and one-line summaries for the
// abnormal overflow and the healthy remainder — never a thousand rows.
func TestRenderMeshGolden(t *testing.T) {
	mesh := &wdmesh.Snapshot{
		Self:             "n0000",
		Quorum:           2,
		Fanout:           3,
		PeersAlive:       986,
		PeersSuspect:     13,
		PeersDemoted:     3,
		MessagesSent:     48210,
		MessagesReceived: 47955,
		DeltaEntries:     291844,
		FullSyncs:        620,
		QueueDrops:       17,
		Transport:        &wdmesh.TransportStats{Reconnects: 4, ProtocolErrors: 1, OversizedFrames: 1},
		Verdicts: []wdmesh.Verdict{
			{Node: "n0404", Kind: wdmesh.VerdictUnreachable, Votes: 3, Worst: watchdog.StatusStuck,
				Since: time.Date(2026, 8, 5, 11, 59, 10, 0, time.UTC)},
		},
	}
	// 999 peers: twelve unreachable (two also demoted), one alarming, one
	// healthy-but-dropping, the rest clean.
	for i := 1; i < 1000; i++ {
		p := wdmesh.PeerSnapshot{
			Node:        fmt.Sprintf("n%04d", i),
			Observation: wdmesh.ObsOK,
			LastHeardNS: int64(200 * time.Millisecond),
			Seq:         900,
		}
		switch {
		case i >= 400 && i < 412:
			p.Observation = wdmesh.ObsUnreachable
			p.LastHeardNS = int64(30 * time.Second)
			p.SendFailures = int64(412 - i) // rank inside the tier
			if i < 402 {
				p.Demoted = true
				p.ConsecFailures = int64(9 - (i - 400))
			}
		case i == 700:
			p.Observation = wdmesh.ObsAlarming
			p.Worst = watchdog.StatusSlow
		case i == 800:
			p.QueueDrops = 17
			p.SendRetries = 21
		}
		mesh.Peers = append(mesh.Peers, p)
	}

	var b strings.Builder
	render(&b, "test:9120", &wdobs.Snapshot{
		Time: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC), Healthy: true, Mesh: mesh,
	})
	got := b.String()

	golden := strings.Join([]string{
		"watchdog @ test:9120 — HEALTHY  (reports=0 alarms=0 journal=0)  12:00:00",
		"CHECKER  STATUS  RUNS  ABN  CONSEC  TRANS  STUCK  BREAKER  FLAPS  P50  P99  CTX AGE  LAST",
		"",
		"mesh: self=n0000 quorum=2 fanout=3  peers=999 (alive=986 suspect=13 demoted=3)  sent=48210 recv=47955 deltas=291844 fullsync=620 drops=17",
		"mesh transport: reconnects=4 protocol-errors=1 oversized=1",
		"VERDICT  KIND         VOTES  WORST  SINCE",
		"n0404    unreachable  3      stuck  11:59:10",
		"PEER   OBS          WORST    SEQ  HEARD  DROPS  RETRIES  FAILS  LINK",
		"n0400  unreachable  healthy  900  30.0s  0      0        12     demoted x9",
		"n0401  unreachable  healthy  900  30.0s  0      0        11     demoted x8",
		"n0402  unreachable  healthy  900  30.0s  0      0        10     ok",
		"n0403  unreachable  healthy  900  30.0s  0      0        9      ok",
		"n0404  unreachable  healthy  900  30.0s  0      0        8      ok",
		"n0405  unreachable  healthy  900  30.0s  0      0        7      ok",
		"n0406  unreachable  healthy  900  30.0s  0      0        6      ok",
		"n0407  unreachable  healthy  900  30.0s  0      0        5      ok",
		"n0408  unreachable  healthy  900  30.0s  0      0        4      ok",
		"n0409  unreachable  healthy  900  30.0s  0      0        3      ok",
		"... and 4 more abnormal peer(s)",
		"... and 985 healthy peer(s)",
		"",
	}, "\n")
	if got != golden {
		t.Errorf("mesh render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
