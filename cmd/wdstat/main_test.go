package main

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gowatchdog/internal/supervise/episode"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdcep"
	"gowatchdog/internal/wdobs"
)

// TestRenderGolden pins the operator-facing table layout, including the
// BREAKER and FLAPS columns added with the self-hardening loop: breaker state
// with retry countdown and trip count, "-" for checkers without a breaker,
// and the per-checker damped-alarm tally.
func TestRenderGolden(t *testing.T) {
	snap := &wdobs.Snapshot{
		Time:       time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Healthy:    false,
		Reports:    120,
		Alarms:     4,
		JournalSeq: 124,
		Checkers: []wdobs.CheckerSnapshot{
			{
				Name:        "kvs.wal",
				Status:      watchdog.StatusError,
				Runs:        41,
				Abnormal:    12,
				Consecutive: 1,
				Transitions: 9,
				Flaps:       5,
				LastReport:  &watchdog.Report{Err: errors.New("wal append: injected error")},
				Latency:     wdobs.LatencySummary{P50NS: 0, P99NS: int64(300 * time.Microsecond)},
				Context:     wdobs.ContextSnapshot{StalenessNS: -1},
			},
			{
				Name:           "kvs.flusher",
				Status:         watchdog.StatusSkipped,
				Runs:           40,
				Abnormal:       6,
				Consecutive:    3,
				Transitions:    4,
				Stuck:          6,
				Breaker:        "open",
				BreakerTrips:   2,
				BreakerRetryNS: int64(2500 * time.Millisecond),
				Latency:        wdobs.LatencySummary{P50NS: int64(1200 * time.Microsecond), P99NS: int64(2 * time.Second)},
				LastReport:     &watchdog.Report{Err: errors.New("checker still blocked from previous execution")},
				Context:        wdobs.ContextSnapshot{StalenessNS: int64(500 * time.Millisecond)},
			},
			{
				Name:    "kvs.indexer",
				Status:  watchdog.StatusHealthy,
				Runs:    42,
				Breaker: "closed",
				Latency: wdobs.LatencySummary{P50NS: int64(800 * time.Microsecond), P99NS: int64(1500 * time.Microsecond)},
				Context: wdobs.ContextSnapshot{StalenessNS: int64(50 * time.Millisecond)},
			},
		},
		CEP: &wdcep.Snapshot{
			Rules:       2,
			Published:   118,
			Dropped:     0,
			Evaluations: 40,
			Fired:       3,
			RingCap:     8192,
			RuleStats: []wdcep.RuleStat{
				{Name: "wal-streak", Kind: wdcep.KindConsecutive, Fired: 3,
					LastFired: time.Date(2026, 8, 5, 11, 59, 30, 0, time.UTC)},
				{Name: "cluster-spread", Kind: wdcep.KindDistinct, Fired: 0},
			},
		},
		Recovery: &wdobs.RecoverySnapshot{Events: 37, Dropped: 5},
		Episodes: &episode.Snapshot{
			Total: 2,
			Open:  1,
			Episodes: []episode.Episode{
				{
					ID: 1, Daemon: "kvsd", Cause: "signal:killed",
					OpenedAt: time.Date(2026, 8, 5, 11, 58, 0, 0, time.UTC),
					Restarts: 1, Closed: true, Resolution: episode.ResolutionHealthy,
					OutageNS:  int64(1200 * time.Millisecond),
					HealthyNS: int64(5200 * time.Millisecond),
					Adopted:   true,
				},
				{
					ID: 2, Daemon: "kvsd", Cause: "watchdog-trigger",
					OpenedAt: time.Date(2026, 8, 5, 11, 59, 50, 0, time.UTC),
				},
			},
			TornRecords: 1,
		},
	}

	var b strings.Builder
	render(&b, "test:9120", snap)
	got := b.String()

	// Column widths are byte-based (the table code pads on len), which is why
	// the µ rows carry one byte of extra pad.
	golden := strings.Join([]string{
		"watchdog @ test:9120 — UNHEALTHY  (reports=120 alarms=4 journal=124)  12:00:00",
		"CHECKER      STATUS   RUNS  ABN  CONSEC  TRANS  STUCK  BREAKER        FLAPS  P50     P99     CTX AGE  LAST",
		"kvs.flusher  skipped  40    6    3       4      6      open(2.5s) x2  0      1.2ms   2.0s    500.0ms  checker still blocked from previous e...",
		"kvs.indexer  healthy  42    0    0       0      0      closed         0      800µs  1.5ms   50.0ms",
		"kvs.wal      error    41    12   1       9      0      -              5      0       300µs  never    wal append: injected error",
		"",
		"cep: 2 rules, 3 fired  (published=118 dropped=0 evaluations=40)",
		"RULE            KIND         FIRED  LAST",
		"wal-streak      consecutive  3      11:59:30",
		"cluster-spread  distinct     0      -",
		"",
		"recovery: events=37 dropped=5",
		"",
		"episodes: total=2 open=1 torn=1",
		"ID  DAEMON  CAUSE             OPENED    RESTARTS  RESOLUTION         OUTAGE  TO-HEALTHY",
		"1   kvsd    signal:killed     11:58:00  1         healthy (adopted)  1.2s    5.2s",
		"2   kvsd    watchdog-trigger  11:59:50  0         open               -       -",
		"",
	}, "\n")
	if got != golden {
		t.Errorf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
