// Command dfsd runs the dfs DataNode with both generations of its disk
// checker (§3.3 / HADOOP-13738), writes steady block traffic, and can
// inject a partial volume failure to show the v1 permissions checker stay
// green while the v2 mimic checker detects.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdobs"
)

func main() {
	var (
		dir         = flag.String("dir", "dfs-data", "base directory for volumes")
		volumes     = flag.Int("volumes", 2, "number of volumes")
		interval    = flag.Duration("wd-interval", time.Second, "watchdog check interval")
		timeout     = flag.Duration("wd-timeout", 6*time.Second, "watchdog liveness timeout")
		wdBreaker   = flag.Int("wd-breaker", 0, "trip a checker's circuit breaker after this many consecutive failures (0 disables)")
		wdDamp      = flag.Duration("wd-damp", 0, "suppress duplicate watchdog alarms within this window (0 disables)")
		wdHangCap   = flag.Int("wd-hang-budget", 0, "max leaked hung checker goroutines before checks degrade to skips (0 = unlimited)")
		failVolume  = flag.Int("fail-volume", -1, "volume to fail (-1 = none)")
		failKind    = flag.String("fail-kind", "error", "volume fault kind: error|hang|delay")
		injectAfter = flag.Duration("inject-after", 5*time.Second, "delay before injection")
		obsAddr     = flag.String("obs-addr", "", "observability listen address (/metrics, /healthz, /watchdog, pprof)")
	)
	flag.Parse()

	dirs := make([]string, *volumes)
	for i := range dirs {
		dirs[i] = filepath.Join(*dir, fmt.Sprintf("vol%d", i))
	}
	factory := watchdog.NewFactory()
	dn, err := dfs.New(dfs.Config{VolumeDirs: dirs, WatchdogFactory: factory})
	if err != nil {
		log.Fatalf("dfsd: %v", err)
	}
	log.Printf("dfsd: DataNode up with %d volumes under %s", *volumes, *dir)

	driver := watchdog.New(append([]watchdog.Option{
		watchdog.WithFactory(factory),
		watchdog.WithInterval(*interval),
		watchdog.WithTimeout(*timeout),
	}, hardeningOptions(*wdBreaker, *wdDamp, *wdHangCap)...)...)
	dn.InstallWatchdog(driver)
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Status.Abnormal() {
			log.Printf("WATCHDOG: %s", rep)
		}
	})
	if *obsAddr != "" {
		obs := wdobs.New()
		obs.Attach(driver)
		osrv, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatalf("dfsd: obs: %v", err)
		}
		defer osrv.Close()
		log.Printf("dfsd: observability on http://%s", osrv.Addr())
	}
	driver.Start()
	defer driver.Stop()

	// Steady block traffic.
	go func() {
		i := 0
		for {
			time.Sleep(500 * time.Millisecond)
			i++
			if _, err := dn.WriteBlock([]byte(fmt.Sprintf("block payload %d", i))); err != nil {
				log.Printf("dfsd: write failed: %v", err)
			}
		}
	}()

	if *failVolume >= 0 {
		kind := faultinject.Error
		switch *failKind {
		case "hang":
			kind = faultinject.Hang
		case "delay":
			kind = faultinject.Delay
		}
		go func() {
			time.Sleep(*injectAfter)
			point := fmt.Sprintf("%s%d", dfs.FaultVolumeWritePrefix, *failVolume)
			dn.Injector().Arm(point, faultinject.Fault{Kind: kind, Delay: 2 * *timeout})
			log.Printf("dfsd: injected %s at %s", *failKind, point)
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Print("dfsd: shutting down")
}

// hardeningOptions translates the -wd-breaker/-wd-damp/-wd-hang-budget flags
// into driver options; zero values leave the corresponding defense disabled.
func hardeningOptions(breaker int, damp time.Duration, hangBudget int) []watchdog.Option {
	var opts []watchdog.Option
	if breaker > 0 {
		opts = append(opts, watchdog.WithBreaker(watchdog.BreakerConfig{Threshold: breaker}))
	}
	if damp > 0 {
		opts = append(opts, watchdog.WithAlarmDamping(damp))
	}
	if hangBudget > 0 {
		opts = append(opts, watchdog.WithHangBudget(hangBudget))
	}
	return opts
}
