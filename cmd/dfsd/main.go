// Command dfsd runs the dfs DataNode with both generations of its disk
// checker (§3.3 / HADOOP-13738), writes steady block traffic, and can
// inject a partial volume failure to show the v1 permissions checker stay
// green while the v2 mimic checker detects.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gowatchdog/internal/dfs"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

func main() {
	var (
		dir         = flag.String("dir", "dfs-data", "base directory for volumes")
		volumes     = flag.Int("volumes", 2, "number of volumes")
		failVolume  = flag.Int("fail-volume", -1, "volume to fail (-1 = none)")
		failKind    = flag.String("fail-kind", "error", "volume fault kind: error|hang|delay")
		injectAfter = flag.Duration("inject-after", 5*time.Second, "delay before injection")
	)
	wdf := wdruntime.BindFlags(flag.CommandLine)
	flag.Parse()

	dirs := make([]string, *volumes)
	for i := range dirs {
		dirs[i] = filepath.Join(*dir, fmt.Sprintf("vol%d", i))
	}
	factory := watchdog.NewFactory()
	dn, err := dfs.New(dfs.Config{VolumeDirs: dirs, WatchdogFactory: factory})
	if err != nil {
		log.Fatalf("dfsd: %v", err)
	}
	log.Printf("dfsd: DataNode up with %d volumes under %s", *volumes, *dir)

	rt, err := wdruntime.New(append(wdf.Options(), wdruntime.WithFactory(factory))...)
	if err != nil {
		log.Fatalf("dfsd: %v", err)
	}
	driver := rt.Driver()
	dn.InstallWatchdog(driver)
	driver.OnReport(func(rep watchdog.Report) {
		if rep.Status.Abnormal() {
			log.Printf("WATCHDOG: %s", rep)
		}
	})
	if err := rt.Start(context.Background()); err != nil {
		log.Fatalf("dfsd: %v", err)
	}
	defer func() {
		if err := rt.Close(); err != nil {
			log.Printf("dfsd: watchdog shutdown: %v", err)
		}
	}()
	if wdf.Journal != "" {
		log.Printf("dfsd: streaming detection journal to %s", wdf.Journal)
	}
	if obsAddr := rt.ObsAddr(); obsAddr != "" {
		log.Printf("dfsd: observability on http://%s", obsAddr)
	}

	// Steady block traffic.
	go func() {
		i := 0
		for {
			time.Sleep(500 * time.Millisecond)
			i++
			if _, err := dn.WriteBlock([]byte(fmt.Sprintf("block payload %d", i))); err != nil {
				log.Printf("dfsd: write failed: %v", err)
			}
		}
	}()

	if *failVolume >= 0 {
		kind := faultinject.Error
		switch *failKind {
		case "hang":
			kind = faultinject.Hang
		case "delay":
			kind = faultinject.Delay
		}
		go func() {
			time.Sleep(*injectAfter)
			point := fmt.Sprintf("%s%d", dfs.FaultVolumeWritePrefix, *failVolume)
			dn.Injector().Arm(point, faultinject.Fault{Kind: kind, Delay: 2 * wdf.Timeout})
			log.Printf("dfsd: injected %s at %s", *failKind, point)
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Print("dfsd: shutting down")
}
