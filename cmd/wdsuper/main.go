// Command wdsuper supervises one watchdog-instrumented daemon (kvsd, dfsd,
// coordd, or anything else) the way the paper's escalation ladder ends: when
// in-process recovery cannot repair a partial failure, the process itself is
// restarted from outside.
//
// wdsuper spawns the command after --, provides it a NOTIFY_SOCKET, and
// treats the sd_notify stream as ground truth: WATCHDOG=1 feeds (sent by
// wdruntime only while the intrinsic watchdog verdict is healthy) keep the
// child alive, feed silence past -feed-window gets it killed and restarted,
// STOPPING=1 disarms the timer for deliberate shutdowns, and
// WATCHDOG=trigger forces an immediate restart. Crashes and
// watchdog-trigger exits (code 70) restart with capped exponential backoff;
// a restart storm (-max-restarts within -restart-window) makes wdsuper give
// up and exit nonzero. Every outage is recorded in the episode ledger
// (-episodes), which supervised children also surface on /watchdog.
//
// Usage:
//
//	wdsuper -episodes /var/lib/kvsd/episodes.jsonl -- kvsd -dir /var/lib/kvsd -watchdog
//	wdsuper -feed-window 10s -max-restarts 5 -restart-window 1m -- dfsd -root /srv/dfs
//	wdsuper -notify=false -stable-after 5s -- coordd -addr :7090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gowatchdog/internal/supervise"
	"gowatchdog/internal/supervise/episode"
)

// exitStorm is wdsuper's own exit code when the restart-storm breaker trips:
// EX_UNAVAILABLE, distinct from the child's ExitWatchdogTrigger (70) so a
// supervisor-of-supervisors can tell "child kept dying" from "child asked".
const exitStorm = 69

func main() {
	var (
		name          = flag.String("name", "", "daemon label in logs and episodes (default: command basename)")
		episodesPath  = flag.String("episodes", "wdsuper-episodes.jsonl", "outage-episode ledger (JSONL)")
		notify        = flag.Bool("notify", true, "provide NOTIFY_SOCKET to the child and use sd_notify feeds as the health signal")
		feedWindow    = flag.Duration("feed-window", 15*time.Second, "max feed silence before the child is unhealthy (advertised as WATCHDOG_USEC)")
		probeEvery    = flag.Duration("probe-every", time.Second, "health evaluation cadence")
		stuckAfter    = flag.Duration("stuck-after", 30*time.Second, "kill a child whose health has not succeeded for this long")
		stableAfter   = flag.Duration("stable-after", 5*time.Second, "without -notify: uptime counting as healthy")
		backoffBase   = flag.Duration("backoff-base", 200*time.Millisecond, "first restart delay")
		backoffCap    = flag.Duration("backoff-cap", 10*time.Second, "restart delay ceiling")
		jitterSeed    = flag.Int64("jitter-seed", 1, "seed for restart-delay jitter")
		maxRestarts   = flag.Int("max-restarts", 5, "storm breaker: give up after this many deaths within -restart-window")
		restartWindow = flag.Duration("restart-window", time.Minute, "storm breaker window")
		termGrace     = flag.Duration("term-grace", 5*time.Second, "SIGTERM-to-SIGKILL grace on shutdown")
	)
	flag.Parse()
	command := flag.Args()
	if len(command) == 0 {
		fmt.Fprintln(os.Stderr, "usage: wdsuper [flags] -- command [args...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	log.SetPrefix("wdsuper: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	ledger, err := episode.Open(*episodesPath)
	if err != nil {
		log.Fatal(err)
	}
	defer ledger.CloseFile()

	cfg := supervise.Config{
		Name:          *name,
		Command:       command,
		BackoffBase:   *backoffBase,
		BackoffCap:    *backoffCap,
		JitterSeed:    *jitterSeed,
		MaxRestarts:   *maxRestarts,
		RestartWindow: *restartWindow,
		ProbeEvery:    *probeEvery,
		StuckAfter:    *stuckAfter,
		StableAfter:   *stableAfter,
		TermGrace:     *termGrace,
		Ledger:        ledger,
		Logf: func(format string, args ...any) {
			log.Printf(format, args...)
		},
	}
	if *notify {
		nl, err := supervise.ListenNotify(os.TempDir(), *feedWindow)
		if err != nil {
			log.Fatal(err)
		}
		defer nl.Close()
		cfg.Env = nl.Env()
		cfg.HealthProbe = nl.Probe
		cfg.Trigger = nl.Trigger()
		cfg.OnSpawn = nl.Reset
	}

	sup, err := supervise.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch err := sup.Run(ctx); err.(type) {
	case nil:
	case *supervise.StormError:
		log.Print(err)
		os.Exit(exitStorm)
	default:
		log.Fatal(err)
	}
}
