// Command kvsd runs the kvs key-value store (the paper's Figure 1 running
// example) with its generated watchdog suite, optionally injecting a gray
// failure after a delay so the watchdog's detection can be observed live.
//
// Usage:
//
//	kvsd -dir /tmp/kvs -addr :7070 -watchdog
//	kvsd -dir /tmp/kvs -addr :7070 -watchdog -inject kvs.flusher.write=hang -inject-after 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"gowatchdog/internal/capsule"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdobs"
)

func main() {
	var (
		dir         = flag.String("dir", "kvs-data", "data directory")
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		replica     = flag.String("replica", "", "replica address to stream mutations to")
		serveRepl   = flag.Bool("serve-replica", false, "run as a replica (apply stream on -addr)")
		inMemory    = flag.Bool("in-memory", false, "disable WAL and SSTables")
		useWatchdog = flag.Bool("watchdog", true, "run the generated watchdog suite")
		interval    = flag.Duration("wd-interval", time.Second, "watchdog check interval")
		timeout     = flag.Duration("wd-timeout", 6*time.Second, "watchdog liveness timeout")
		wdBreaker   = flag.Int("wd-breaker", 0, "trip a checker's circuit breaker after this many consecutive failures (0 disables)")
		wdDamp      = flag.Duration("wd-damp", 0, "suppress duplicate watchdog alarms within this window (0 disables)")
		wdHangCap   = flag.Int("wd-hang-budget", 0, "max leaked hung checker goroutines before checks degrade to skips (0 = unlimited)")
		inject      = flag.String("inject", "", "fault to inject: <point>=<hang|error|delay|corrupt>")
		injectAfter = flag.Duration("inject-after", 5*time.Second, "delay before injecting")
		capsuleDir  = flag.String("capsules", "", "directory to record failure capsules (§5.2)")
		autoRecover = flag.Bool("recover", false, "enable cheap recovery on alarms (§5.2)")
		obsAddr     = flag.String("obs-addr", "", "observability listen address (/metrics, /healthz, /watchdog, pprof)")
		journalPath = flag.String("journal", "", "file to stream the detection journal to as JSONL (wdreplay-compatible)")
	)
	flag.Parse()

	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:             *dir,
		InMemory:        *inMemory,
		ReplicaAddr:     *replica,
		WatchdogFactory: factory,
	})
	if err != nil {
		log.Fatalf("kvsd: %v", err)
	}
	defer store.Close()
	store.Start()

	if *serveRepl {
		rs, err := kvs.ServeReplica(*addr, store)
		if err != nil {
			log.Fatalf("kvsd: %v", err)
		}
		defer rs.Close()
		log.Printf("kvsd: replica applying stream on %s", rs.Addr())
		waitForSignal()
		return
	}

	srv, err := kvs.Serve(*addr, store)
	if err != nil {
		log.Fatalf("kvsd: %v", err)
	}
	defer srv.Close()
	log.Printf("kvsd: serving on %s (dir=%s in-memory=%v)", srv.Addr(), *dir, *inMemory)

	if *useWatchdog {
		shadow, err := wdio.NewFS(kvs.ShadowDirFor(*dir), 0)
		if err != nil {
			log.Fatalf("kvsd: shadow fs: %v", err)
		}
		driver := watchdog.New(append([]watchdog.Option{
			watchdog.WithFactory(factory),
			watchdog.WithInterval(*interval),
			watchdog.WithTimeout(*timeout),
		}, hardeningOptions(*wdBreaker, *wdDamp, *wdHangCap)...)...)
		store.InstallWatchdog(driver, shadow)
		driver.OnAlarm(func(a watchdog.Alarm) {
			log.Printf("WATCHDOG ALARM: %s (consecutive=%d)", a.Report, a.Consecutive)
			if !a.Report.Site.IsZero() {
				log.Printf("  pinpoint: %s", a.Report.Site)
			}
			for k, v := range a.Report.Payload {
				log.Printf("  context %s = %v", k, v)
			}
		})
		if *capsuleDir != "" {
			rec, err := capsule.NewRecorder(*capsuleDir)
			if err != nil {
				log.Fatalf("kvsd: capsules: %v", err)
			}
			var recMu sync.Mutex
			driver.OnReport(func(rep watchdog.Report) {
				recMu.Lock()
				rec.OnReport(rep)
				recMu.Unlock()
			})
			log.Printf("kvsd: recording failure capsules to %s", *capsuleDir)
		}
		if *autoRecover {
			mgr := recovery.New()
			mgr.Register(recovery.ForSiteOp("quarantine-corrupt-tables", "sstable.VerifyChecksum",
				func(rep watchdog.Report) error {
					total := 0
					for i := 0; i < store.Partitions(); i++ {
						n, err := store.RepairPartition(i)
						if err != nil {
							return err
						}
						total += n
					}
					log.Printf("kvsd: recovery quarantined %d corrupt tables", total)
					return nil
				}))
			driver.OnAlarm(mgr.HandleAlarm)
			log.Print("kvsd: cheap recovery enabled")
		}
		if *obsAddr != "" || *journalPath != "" {
			opts := []wdobs.Option{wdobs.WithRegistry(store.Metrics())}
			if *journalPath != "" {
				f, err := os.Create(*journalPath)
				if err != nil {
					log.Fatalf("kvsd: journal: %v", err)
				}
				defer f.Close()
				opts = append(opts, wdobs.WithSink(f))
				log.Printf("kvsd: streaming detection journal to %s", *journalPath)
			}
			obs := wdobs.New(opts...)
			obs.Attach(driver)
			if *obsAddr != "" {
				osrv, err := obs.Serve(*obsAddr)
				if err != nil {
					log.Fatalf("kvsd: obs: %v", err)
				}
				defer osrv.Close()
				log.Printf("kvsd: observability on http://%s (/metrics /healthz /watchdog /debug/pprof)", osrv.Addr())
			}
		}
		driver.Start()
		defer driver.Stop()
		log.Printf("kvsd: watchdog running with %d checkers (interval=%v timeout=%v)",
			len(driver.Checkers()), *interval, *timeout)
	}

	if *inject != "" {
		point, kind, err := parseInjection(*inject)
		if err != nil {
			log.Fatalf("kvsd: %v", err)
		}
		go func() {
			time.Sleep(*injectAfter)
			store.Injector().Arm(point, faultinject.Fault{Kind: kind, Delay: 2 * *timeout})
			log.Printf("kvsd: injected %s at %s", kind, point)
		}()
	}

	waitForSignal()
	log.Print("kvsd: shutting down")
}

// parseInjection parses "<point>=<kind>".
func parseInjection(s string) (string, faultinject.Kind, error) {
	point, kindStr, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("bad -inject %q, want <point>=<kind>", s)
	}
	switch kindStr {
	case "hang":
		return point, faultinject.Hang, nil
	case "error":
		return point, faultinject.Error, nil
	case "delay":
		return point, faultinject.Delay, nil
	case "corrupt":
		return point, faultinject.Corrupt, nil
	case "panic":
		return point, faultinject.Panic, nil
	default:
		return "", 0, fmt.Errorf("unknown fault kind %q", kindStr)
	}
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// hardeningOptions translates the -wd-breaker/-wd-damp/-wd-hang-budget flags
// into driver options; zero values leave the corresponding defense disabled.
func hardeningOptions(breaker int, damp time.Duration, hangBudget int) []watchdog.Option {
	var opts []watchdog.Option
	if breaker > 0 {
		opts = append(opts, watchdog.WithBreaker(watchdog.BreakerConfig{Threshold: breaker}))
	}
	if damp > 0 {
		opts = append(opts, watchdog.WithAlarmDamping(damp))
	}
	if hangBudget > 0 {
		opts = append(opts, watchdog.WithHangBudget(hangBudget))
	}
	return opts
}
