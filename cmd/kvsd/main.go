// Command kvsd runs the kvs key-value store (the paper's Figure 1 running
// example) with its generated watchdog suite, optionally injecting a gray
// failure after a delay so the watchdog's detection can be observed live.
//
// Usage:
//
//	kvsd -dir /tmp/kvs -addr :7070 -watchdog
//	kvsd -dir /tmp/kvs -addr :7070 -watchdog -inject kvs.flusher.write=hang -inject-after 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"gowatchdog/internal/capsule"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/kvs"
	"gowatchdog/internal/recovery"
	"gowatchdog/internal/supervise"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdruntime"
)

func main() {
	var (
		dir         = flag.String("dir", "kvs-data", "data directory")
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		replica     = flag.String("replica", "", "replica address to stream mutations to")
		serveRepl   = flag.Bool("serve-replica", false, "run as a replica (apply stream on -addr)")
		inMemory    = flag.Bool("in-memory", false, "disable WAL and SSTables")
		useWatchdog = flag.Bool("watchdog", true, "run the generated watchdog suite")
		inject      = flag.String("inject", "", "fault to inject: <point>=<hang|error|delay|corrupt>")
		injectAfter = flag.Duration("inject-after", 5*time.Second, "delay before injecting")
		capsuleDir  = flag.String("capsules", "", "directory to record failure capsules (§5.2)")
		autoRecover = flag.Bool("recover", false, "enable cheap recovery on alarms (§5.2)")
		recoverExit = flag.Bool("recover-exit", false, "with -recover: exit 70 when escalation fails so a supervisor (wdsuper/systemd) restarts the process")
	)
	wdf := wdruntime.BindFlags(flag.CommandLine)
	flag.Parse()

	factory := watchdog.NewFactory()
	store, err := kvs.Open(kvs.Config{
		Dir:             *dir,
		InMemory:        *inMemory,
		ReplicaAddr:     *replica,
		WatchdogFactory: factory,
	})
	if err != nil {
		log.Fatalf("kvsd: %v", err)
	}
	defer store.Close()
	store.Start()

	if *serveRepl {
		rs, err := kvs.ServeReplica(*addr, store)
		if err != nil {
			log.Fatalf("kvsd: %v", err)
		}
		defer rs.Close()
		log.Printf("kvsd: replica applying stream on %s", rs.Addr())
		waitForSignal()
		return
	}

	srv, err := kvs.Serve(*addr, store)
	if err != nil {
		log.Fatalf("kvsd: %v", err)
	}
	defer srv.Close()
	log.Printf("kvsd: serving on %s (dir=%s in-memory=%v)", srv.Addr(), *dir, *inMemory)

	if *useWatchdog {
		shadow, err := wdio.NewFS(kvs.ShadowDirFor(*dir), 0)
		if err != nil {
			log.Fatalf("kvsd: shadow fs: %v", err)
		}
		ropts := append(wdf.Options(),
			wdruntime.WithFactory(factory),
			wdruntime.WithRegistry(store.Metrics()),
		)
		if *autoRecover {
			var mopts []recovery.Option
			if *recoverExit {
				// The ladder's top rung: when in-process recovery keeps
				// failing, exit with the watchdog-trigger code and let the
				// supervisor restart us as a fresh process.
				mopts = append(mopts, recovery.WithEscalationExit(supervise.ExitWatchdogTrigger))
			}
			mgr := recovery.New(mopts...)
			mgr.Register(recovery.ForSiteOp("quarantine-corrupt-tables", "sstable.VerifyChecksum",
				func(rep watchdog.Report) error {
					total := 0
					for i := 0; i < store.Partitions(); i++ {
						n, err := store.RepairPartition(i)
						if err != nil {
							return err
						}
						total += n
					}
					log.Printf("kvsd: recovery quarantined %d corrupt tables", total)
					return nil
				}))
			ropts = append(ropts, wdruntime.WithRecovery(mgr))
			log.Print("kvsd: cheap recovery enabled")
		}
		rt, err := wdruntime.New(ropts...)
		if err != nil {
			log.Fatalf("kvsd: %v", err)
		}
		driver := rt.Driver()
		store.InstallWatchdog(driver, shadow)
		driver.OnAlarm(func(a watchdog.Alarm) {
			log.Printf("WATCHDOG ALARM: %s (consecutive=%d)", a.Report, a.Consecutive)
			if !a.Report.Site.IsZero() {
				log.Printf("  pinpoint: %s", a.Report.Site)
			}
			for k, v := range a.Report.Payload {
				log.Printf("  context %s = %v", k, v)
			}
		})
		if *capsuleDir != "" {
			rec, err := capsule.NewRecorder(*capsuleDir)
			if err != nil {
				log.Fatalf("kvsd: capsules: %v", err)
			}
			var recMu sync.Mutex
			driver.OnReport(func(rep watchdog.Report) {
				recMu.Lock()
				rec.OnReport(rep)
				recMu.Unlock()
			})
			log.Printf("kvsd: recording failure capsules to %s", *capsuleDir)
		}
		if err := rt.Start(context.Background()); err != nil {
			log.Fatalf("kvsd: %v", err)
		}
		defer func() {
			if err := rt.Close(); err != nil {
				log.Printf("kvsd: watchdog shutdown: %v", err)
			}
		}()
		if wdf.Journal != "" {
			log.Printf("kvsd: streaming detection journal to %s", wdf.Journal)
		}
		if obsAddr := rt.ObsAddr(); obsAddr != "" {
			log.Printf("kvsd: observability on http://%s (/metrics /healthz /watchdog /debug/pprof)", obsAddr)
		}
		log.Printf("kvsd: watchdog running with %d checkers (interval=%v timeout=%v)",
			len(driver.Checkers()), wdf.Interval, wdf.Timeout)
	}

	if *inject != "" {
		point, kind, err := parseInjection(*inject)
		if err != nil {
			log.Fatalf("kvsd: %v", err)
		}
		go func() {
			time.Sleep(*injectAfter)
			store.Injector().Arm(point, faultinject.Fault{Kind: kind, Delay: 2 * wdf.Timeout})
			log.Printf("kvsd: injected %s at %s", kind, point)
		}()
	}

	waitForSignal()
	log.Print("kvsd: shutting down")
}

// parseInjection parses "<point>=<kind>".
func parseInjection(s string) (string, faultinject.Kind, error) {
	point, kindStr, ok := strings.Cut(s, "=")
	if !ok {
		return "", 0, fmt.Errorf("bad -inject %q, want <point>=<kind>", s)
	}
	switch kindStr {
	case "hang":
		return point, faultinject.Hang, nil
	case "error":
		return point, faultinject.Error, nil
	case "delay":
		return point, faultinject.Delay, nil
	case "corrupt":
		return point, faultinject.Corrupt, nil
	case "panic":
		return point, faultinject.Panic, nil
	default:
		return "", 0, fmt.Errorf("unknown fault kind %q", kindStr)
	}
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
