// Command awgen is the AutoWatchdog generator CLI (§4): it analyzes a Go
// package, prints the program-logic-reduction report (Figure 2), and
// optionally emits the generated checkers file plus hook-instrumented
// sources (Figure 3).
//
// Usage:
//
//	awgen -pkg ./internal/coord                      # report only
//	awgen -pkg ./internal/coord -json                # machine-readable report
//	awgen -pkg ./internal/coord -out /tmp/coordwd    # + generate & instrument
//
// With -from-tests, awgen runs the second checker source instead: the
// testmine pass walks the package's _test.go files and turns side-effect-free
// assertion predicates into checkers (DESIGN.md §8):
//
//	awgen -from-tests -pkg ./internal/kvs                    # mining report
//	awgen -from-tests -pkg ./internal/kvs -json              # machine-readable
//	awgen -from-tests -pkg ./internal/kvs -out ./internal/kvs # emit checkers
//
// In report-only mode awgen exits non-zero when no long-running regions (or,
// under -from-tests, no minable predicates) are found, so CI can catch
// analyses that silently matched nothing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gowatchdog/internal/autowatchdog"
	"gowatchdog/internal/autowatchdog/testmine"
)

func main() {
	var (
		pkgDir    = flag.String("pkg", "", "package directory to analyze (required)")
		outDir    = flag.String("out", "", "output directory for generated + instrumented files")
		entries   = flag.String("entries", "", "comma-separated regexps forcing region roots")
		depth     = flag.Int("depth", 5, "max call-chain depth")
		quiet     = flag.Bool("quiet", false, "suppress the per-region report")
		jsonMode  = flag.Bool("json", false, "emit the analysis report as JSON")
		fromTests = flag.Bool("from-tests", false, "mine checkers from the package's test assertions instead of reducing regions")
	)
	flag.Parse()
	if *pkgDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *fromTests {
		runFromTests(*pkgDir, *outDir, *quiet, *jsonMode)
		return
	}

	cfg := autowatchdog.Config{
		PackageDir:    *pkgDir,
		OutDir:        *outDir,
		MaxChainDepth: *depth,
	}
	if *entries != "" {
		cfg.EntryPatterns = strings.Split(*entries, ",")
	}
	a, err := autowatchdog.Analyze(cfg)
	if err != nil {
		log.Fatalf("awgen: %v", err)
	}
	switch {
	case *jsonMode:
		data, err := a.ReportJSON()
		if err != nil {
			log.Fatalf("awgen: json: %v", err)
		}
		fmt.Printf("%s\n", data)
	case !*quiet:
		fmt.Print(a.Summary())
	}
	if *outDir == "" {
		// Report-only invocations are used as a CI gate: an analysis that
		// found nothing to monitor is almost always a misconfigured -pkg or
		// -entries, not a healthy package.
		if len(a.Regions) == 0 {
			fmt.Fprintf(os.Stderr, "awgen: no long-running regions found in %s\n", *pkgDir)
			os.Exit(1)
		}
		return
	}
	genPath, err := a.Generate()
	if err != nil {
		log.Fatalf("awgen: generate: %v", err)
	}
	written, err := a.Instrument("")
	if err != nil {
		log.Fatalf("awgen: instrument: %v", err)
	}
	fmt.Printf("\ngenerated %s\ninstrumented %d files into %s\n", genPath, len(written), *outDir)
}

// runFromTests drives the test-mining pass with the same mode contract as
// region mode: report / -json / -out, nonzero exit on an empty report.
func runFromTests(pkgDir, outDir string, quiet, jsonMode bool) {
	a, err := testmine.Mine(testmine.Config{PackageDir: pkgDir, OutDir: outDir})
	if err != nil {
		log.Fatalf("awgen: from-tests: %v", err)
	}
	switch {
	case jsonMode:
		if err := a.ReportJSON(os.Stdout); err != nil {
			log.Fatalf("awgen: json: %v", err)
		}
	case !quiet:
		a.Summary(os.Stdout)
	}
	if outDir == "" {
		if len(a.Checkers) == 0 {
			fmt.Fprintf(os.Stderr, "awgen: no minable assertion predicates found in %s\n", pkgDir)
			os.Exit(1)
		}
		return
	}
	genPath, err := a.Generate()
	if err != nil {
		log.Fatalf("awgen: generate: %v", err)
	}
	fmt.Printf("generated %s (%d mined checkers)\n", genPath, len(a.Checkers))
}
