// Command wdchaos runs a randomized fault-injection campaign against one of
// the watchdog-instrumented substrates and prints the scored verdict. It is
// the CI face of internal/campaign: a nonzero exit means the self-hardening
// loop misbehaved (false positives in fault-free phases, detection rate below
// threshold, or a blown hang budget).
//
// Usage:
//
//	wdchaos -substrate synth -seed 42 -json
//	wdchaos -substrate kvs -dir /tmp/chaos -interval 20ms -storm 20
//	wdchaos -substrate synth -seed 7 -breaker 3 -damp 30s -hang-budget 2
//	wdchaos -substrate mesh -seed 7 -nodes 3 -quorum 2 -mesh-interval 20ms
//	wdchaos -substrate meshscale -seed 1 -nodes 500 -fanout 3 -bench-out BENCH_mesh.json
//	wdchaos -substrate kvs -checkers mined -min-detection-rate 0.01 -json
//	wdchaos -substrate cep -seed 42 -json
//	wdchaos -substrate super -seed 42 -outages 2 -json
//
// The -checkers flag (kvs and dfs only) selects the E13 ablation targets:
// the same substrate scored under the reduced suite, the test-mined suite
// (awgen -from-tests), or both. Mined-only runs miss write-path faults by
// design — pass a low -min-detection-rate and compare verdicts instead of
// gating on exit status.
//
// The synthetic substrate runs on a virtual clock by default, so a full
// campaign completes in milliseconds and is reproducible bit-for-bit from the
// seed. The kvs and dfs substrates exercise real stores on the real clock;
// keep -interval small and the tick counts modest there. The mesh substrate
// boots a seeded in-process cluster and scores remote gray-failure detection
// and partition tolerance (see campaign.RunMesh). The meshscale substrate
// steps hundreds of mesh nodes on a virtual clock through correlated
// partition, churn, and lossy-link faults, and gates message volume at
// O(N·K) (see campaign.RunMeshScale). The super substrate runs a
// real crash-restart supervisor over re-executions of this binary and scores
// time-to-restart, stuck detection, episode adoption, and the restart-storm
// breaker (see campaign.RunSuper).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gowatchdog/internal/campaign"
	"gowatchdog/internal/campaign/meshscale"
	"gowatchdog/internal/clock"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/wdruntime"
)

func main() {
	// When the super campaign re-executes this binary as its supervised
	// daemon, become the child and never reach flag parsing.
	campaign.MaybeSuperChild()

	var (
		substrate = flag.String("substrate", "synth", "system under campaign: synth|kvs|dfs|mesh|meshscale|cep|super")
		checkers  = flag.String("checkers", "", "ablation checker source for kvs/dfs: reduced|mined|both (empty = standard target)")
		dir       = flag.String("dir", "", "scratch directory for disk-backed substrates (default: temp dir)")
		seed      = flag.Int64("seed", 1, "schedule-generation seed")
		realClock = flag.Bool("real-clock", false, "run the synth substrate on the real clock instead of a virtual one")

		interval = flag.Duration("interval", 100*time.Millisecond, "campaign tick interval")
		warmup   = flag.Int("warmup", 10, "fault-free warmup ticks")
		storm    = flag.Int("storm", 40, "storm-phase ticks (faults are armed here)")
		cooldown = flag.Int("cooldown", 20, "fault-free cooldown ticks")
		grace    = flag.Int("grace", 5, "leading cooldown ticks where residue counts as collateral")
		maxConc  = flag.Int("max-concurrent", 2, "max simultaneously armed faults in generated schedules")
		minRate  = flag.Float64("min-detection-rate", 0.75, "pass threshold on detected/injected")

		breaker    = flag.Int("breaker", 3, "checker circuit-breaker threshold (0 disables)")
		backoff    = flag.Duration("breaker-backoff", 0, "breaker backoff base (0 = 2x checker interval)")
		damp       = flag.Duration("damp", 30*time.Second, "alarm-damping suppression window (0 disables)")
		hangBudget = flag.Int("hang-budget", 2, "leaked hung-goroutine budget (0 disables)")

		timeout = flag.Duration("wd-timeout", 0, "checker liveness timeout override (0 = substrate default)")
		rawJSON = flag.Bool("json", false, "print the verdict as JSON instead of the human rendering")

		nodes        = flag.Int("nodes", 0, "mesh substrates: cluster size (0 = substrate default: 3 for mesh, 500 for meshscale)")
		quorum       = flag.Int("quorum", 2, "mesh substrates: cluster-verdict corroboration threshold")
		meshInterval = flag.Duration("mesh-interval", 0, "mesh substrates: gossip period (0 = substrate default)")
		fanout       = flag.Int("fanout", 3, "meshscale substrate: peers sampled per gossip round")
		benchOut     = flag.String("bench-out", "", "meshscale substrate: also write the JSON verdict to this file (BENCH_mesh.json)")

		outages       = flag.Int("outages", 2, "super substrate: SIGKILL rounds before the hang/adoption/storm phases")
		feedWindow    = flag.Duration("feed-window", 300*time.Millisecond, "super substrate: sd_notify watchdog window")
		stormRestarts = flag.Int("storm-restarts", 3, "super substrate: crash-loop breaker threshold")
	)
	flag.Parse()

	if *substrate == "mesh" {
		n, iv := *nodes, *meshInterval
		if n == 0 {
			n = 3
		}
		if iv == 0 {
			iv = 25 * time.Millisecond
		}
		runMesh(*seed, n, *quorum, iv, *rawJSON)
		return
	}
	if *substrate == "meshscale" {
		runMeshScale(*seed, *nodes, *fanout, *quorum, *meshInterval, *benchOut, *rawJSON)
		return
	}
	if *substrate == "cep" {
		runCEP(*seed, *interval, *rawJSON)
		return
	}
	if *substrate == "super" {
		runSuper(*seed, *outages, *feedWindow, *stormRestarts, *dir, *rawJSON)
		return
	}

	var opts []wdruntime.Option
	if *breaker > 0 {
		opts = append(opts, wdruntime.WithBreaker(watchdog.BreakerConfig{
			Threshold:   *breaker,
			BackoffBase: *backoff,
			// Jitter decorrelates probe storms in production; a campaign wants
			// the same verdict for the same seed, so disable it.
			JitterFrac: -1,
		}))
	}
	if *damp > 0 {
		opts = append(opts, wdruntime.WithAlarmDamping(*damp))
	}
	if *hangBudget > 0 {
		opts = append(opts, wdruntime.WithHangBudget(*hangBudget))
	}
	if *timeout > 0 {
		opts = append(opts, wdruntime.WithTimeout(*timeout))
	}
	opts = append(opts, wdruntime.WithJitterSeed(*seed))

	tgt, err := buildTarget(*substrate, *checkers, *dir, *realClock, opts)
	if err != nil {
		fatal(err)
	}
	if tgt.Close != nil {
		defer tgt.Close()
	}

	verdict, err := campaign.Run(tgt, campaign.Config{
		Seed:             *seed,
		Interval:         *interval,
		WarmupTicks:      *warmup,
		StormTicks:       *storm,
		CooldownTicks:    *cooldown,
		GraceTicks:       *grace,
		MaxConcurrent:    *maxConc,
		MinDetectionRate: *minRate,
		HangBudget:       *hangBudget,
	})
	if err != nil {
		fatal(err)
	}

	if *rawJSON {
		data, err := verdict.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(verdict.Render())
	}
	if !verdict.Pass {
		os.Exit(1)
	}
}

func buildTarget(substrate, checkers, dir string, realClock bool, opts []wdruntime.Option) (*campaign.Target, error) {
	if substrate == "synth" {
		if checkers != "" {
			return nil, fmt.Errorf("-checkers applies to the kvs and dfs substrates only")
		}
		clk := clock.Clock(clock.Real())
		if !realClock {
			clk = clock.NewVirtual()
		}
		return campaign.NewSynthTarget(clk, opts...), nil
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "wdchaos-*")
		if err != nil {
			return nil, err
		}
		dir = tmp
	}
	if checkers != "" {
		return campaign.NewAblationTarget(substrate, dir, checkers, opts...)
	}
	return campaign.NewTarget(substrate, dir, opts...)
}

// runMesh scores the multi-node mesh campaign: remote fail-slow detection via
// gossiped intrinsic verdicts, verdict clearing, and false-positive counts
// under a seeded one-way partition.
func runMesh(seed int64, nodes, quorum int, interval time.Duration, rawJSON bool) {
	verdict, err := campaign.RunMesh(campaign.MeshConfig{
		Seed:     seed,
		Nodes:    nodes,
		Quorum:   quorum,
		Interval: interval,
	})
	if err != nil {
		fatal(err)
	}
	if rawJSON {
		data, err := verdict.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(verdict.Render())
	}
	if !verdict.Pass {
		os.Exit(1)
	}
}

// runMeshScale scores the mesh-at-scale survival campaign: hundreds of
// Step-mode nodes on a virtual clock under seeded correlated partitions,
// churn, and lossy links (see campaign.RunMeshScale). The verdict is
// deterministic in the seed; -bench-out commits it as BENCH_mesh.json.
func runMeshScale(seed int64, nodes, fanout, quorum int, interval time.Duration, benchOut string, rawJSON bool) {
	verdict, err := campaign.RunMeshScale(meshscale.Config{
		Seed:     seed,
		Nodes:    nodes,
		Fanout:   fanout,
		Quorum:   quorum,
		Interval: interval,
	})
	if err != nil {
		fatal(err)
	}
	data, err := verdict.JSON()
	if err != nil {
		fatal(err)
	}
	if benchOut != "" {
		if err := os.WriteFile(benchOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if rawJSON {
		fmt.Println(string(data))
	} else {
		fmt.Print(verdict.Render())
	}
	if !verdict.Pass {
		os.Exit(1)
	}
}

// runCEP scores the temporal-rule campaign: a seeded streak + spread fault
// sequence on the synthetic substrate under a virtual clock, with a
// fault-free control arm whose firings count as false positives (see
// campaign.RunCEP).
func runCEP(seed int64, interval time.Duration, rawJSON bool) {
	verdict, err := campaign.RunCEP(campaign.CEPConfig{
		Seed:     seed,
		Interval: interval,
	})
	if err != nil {
		fatal(err)
	}
	if rawJSON {
		data, err := verdict.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(verdict.Render())
	}
	if !verdict.Pass {
		os.Exit(1)
	}
}

// runSuper scores the supervision campaign: a real Supervisor over
// re-executions of this binary, SIGKILLed, SIGSTOPped, and crash-looped on a
// seeded schedule (see campaign.RunSuper).
func runSuper(seed int64, outages int, feedWindow time.Duration, stormRestarts int, dir string, rawJSON bool) {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	verdict, err := campaign.RunSuper(campaign.SuperConfig{
		Seed:          seed,
		ChildCommand:  []string{exe},
		Outages:       outages,
		FeedWindow:    feedWindow,
		StormRestarts: stormRestarts,
		Dir:           dir,
	})
	if err != nil {
		fatal(err)
	}
	if rawJSON {
		data, err := verdict.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(verdict.Render())
	}
	if !verdict.Pass {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wdchaos: %v\n", err)
	os.Exit(1)
}
