// Command coordd runs the coordination service (leader or follower) with
// its watchdog, heartbeat detector, and admin command server — the full
// setup of the paper's §4.2 case study. With -zk2201 it injects the
// ZOOKEEPER-2201 network fault after a delay and logs what each detector
// sees.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/coord"
	"gowatchdog/internal/detect"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdruntime"
)

func main() {
	var (
		follower    = flag.Bool("follower", false, "run as follower")
		addr        = flag.String("addr", "127.0.0.1:7080", "follower proposal listen address")
		clientAddr  = flag.String("client", "127.0.0.1:7082", "client protocol address (leader mode)")
		leaderTo    = flag.String("connect", "", "leader mode: follower address to sync to")
		adminAddr   = flag.String("admin", "127.0.0.1:7081", "admin command address (leader mode)")
		shadowDir   = flag.String("shadow", "coord-shadow", "watchdog shadow directory")
		snapDir     = flag.String("snapshots", "coord-snapshots", "snapshot service directory")
		logDir      = flag.String("log", "coord-log", "transaction log directory (empty disables)")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "snapshot cadence")
		zk2201      = flag.Bool("zk2201", false, "inject the ZOOKEEPER-2201 network hang")
		injectAfter = flag.Duration("inject-after", 10*time.Second, "delay before injection")
	)
	wdf := wdruntime.BindFlags(flag.CommandLine)
	flag.Parse()

	if *follower {
		f, err := coord.NewFollower(*addr)
		if err != nil {
			log.Fatalf("coordd: %v", err)
		}
		defer f.Close()
		log.Printf("coordd: follower on %s", f.Addr())
		waitForSignal()
		return
	}

	factory := watchdog.NewFactory()
	leader := coord.NewLeader(coord.LeaderConfig{
		FollowerAddr:    *leaderTo,
		WatchdogFactory: factory,
	})
	if *logDir != "" {
		if err := leader.OpenTxnLog(*logDir); err != nil {
			log.Fatalf("coordd: %v", err)
		}
	}
	hb := detect.NewHeartbeat(clock.Real(), wdf.Timeout)
	leader.OnHeartbeat(hb.Beat)
	leader.Start()
	defer leader.Close()

	admin, err := coord.ServeAdmin(*adminAddr, leader)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer admin.Close()

	clients, err := coord.ServeClients(*clientAddr, leader, 10*time.Second)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer clients.Close()

	snap, err := leader.StartSnapshotService(*snapDir, *snapEvery, 2)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer snap.Close()
	log.Printf("coordd: leader up (clients on %s, admin on %s, follower=%q, snapshots in %s)",
		clients.Addr(), admin.Addr(), *leaderTo, *snapDir)

	shadow, err := wdio.NewFS(*shadowDir, 0)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	rt, err := wdruntime.New(append(wdf.Options(), wdruntime.WithFactory(factory))...)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	driver := rt.Driver()
	leader.InstallWatchdog(driver, shadow)
	driver.OnAlarm(func(a watchdog.Alarm) {
		log.Printf("WATCHDOG ALARM: %s", a.Report)
		if !a.Report.Site.IsZero() {
			log.Printf("  pinpoint: %s", a.Report.Site)
		}
	})
	if err := rt.Start(context.Background()); err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer func() {
		if err := rt.Close(); err != nil {
			log.Printf("coordd: watchdog shutdown: %v", err)
		}
	}()
	if wdf.Journal != "" {
		log.Printf("coordd: streaming detection journal to %s", wdf.Journal)
	}
	if obsAddr := rt.ObsAddr(); obsAddr != "" {
		log.Printf("coordd: observability on http://%s", obsAddr)
	}

	// Steady write traffic so the pipeline (and hooks) stay active.
	go func() {
		leader.SubmitWait(coord.OpCreate, "/app", []byte("root"), 5*time.Second)
		i := 0
		for {
			time.Sleep(500 * time.Millisecond)
			i++
			err := leader.SubmitWait(coord.OpSet, "/app", []byte{byte(i)}, 2*time.Second)
			if err != nil {
				log.Printf("coordd: write stalled: %v", err)
			}
		}
	}()

	// Periodic view of what the extrinsic detectors believe.
	go func() {
		for {
			time.Sleep(2 * time.Second)
			ruok := "imok"
			if err := coord.AdminRuok(admin.Addr()); err != nil {
				ruok = "FAIL"
			}
			log.Printf("coordd: heartbeat-suspect=%v admin=%s watchdog-healthy=%v",
				hb.Suspect(), ruok, driver.Healthy())
		}
	}()

	if *zk2201 {
		go func() {
			time.Sleep(*injectAfter)
			leader.Injector().Arm(coord.FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
			log.Printf("coordd: ZK-2201 injected — follower sync now black-holes inside the commit lock")
		}()
	}

	waitForSignal()
	log.Print("coordd: shutting down")
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
