// Command coordd runs the coordination service (leader or follower) with
// its watchdog, heartbeat detector, and admin command server — the full
// setup of the paper's §4.2 case study. With -zk2201 it injects the
// ZOOKEEPER-2201 network fault after a delay and logs what each detector
// sees.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gowatchdog/internal/clock"
	"gowatchdog/internal/coord"
	"gowatchdog/internal/detect"
	"gowatchdog/internal/faultinject"
	"gowatchdog/internal/watchdog"
	"gowatchdog/internal/watchdog/wdio"
	"gowatchdog/internal/wdobs"
)

func main() {
	var (
		follower    = flag.Bool("follower", false, "run as follower")
		addr        = flag.String("addr", "127.0.0.1:7080", "follower proposal listen address")
		clientAddr  = flag.String("client", "127.0.0.1:7082", "client protocol address (leader mode)")
		leaderTo    = flag.String("connect", "", "leader mode: follower address to sync to")
		adminAddr   = flag.String("admin", "127.0.0.1:7081", "admin command address (leader mode)")
		shadowDir   = flag.String("shadow", "coord-shadow", "watchdog shadow directory")
		snapDir     = flag.String("snapshots", "coord-snapshots", "snapshot service directory")
		logDir      = flag.String("log", "coord-log", "transaction log directory (empty disables)")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "snapshot cadence")
		interval    = flag.Duration("wd-interval", time.Second, "watchdog check interval")
		timeout     = flag.Duration("wd-timeout", 6*time.Second, "watchdog liveness timeout")
		wdBreaker   = flag.Int("wd-breaker", 0, "trip a checker's circuit breaker after this many consecutive failures (0 disables)")
		wdDamp      = flag.Duration("wd-damp", 0, "suppress duplicate watchdog alarms within this window (0 disables)")
		wdHangCap   = flag.Int("wd-hang-budget", 0, "max leaked hung checker goroutines before checks degrade to skips (0 = unlimited)")
		zk2201      = flag.Bool("zk2201", false, "inject the ZOOKEEPER-2201 network hang")
		injectAfter = flag.Duration("inject-after", 10*time.Second, "delay before injection")
		obsAddr     = flag.String("obs-addr", "", "observability listen address (/metrics, /healthz, /watchdog, pprof)")
	)
	flag.Parse()

	if *follower {
		f, err := coord.NewFollower(*addr)
		if err != nil {
			log.Fatalf("coordd: %v", err)
		}
		defer f.Close()
		log.Printf("coordd: follower on %s", f.Addr())
		waitForSignal()
		return
	}

	factory := watchdog.NewFactory()
	leader := coord.NewLeader(coord.LeaderConfig{
		FollowerAddr:    *leaderTo,
		WatchdogFactory: factory,
	})
	if *logDir != "" {
		if err := leader.OpenTxnLog(*logDir); err != nil {
			log.Fatalf("coordd: %v", err)
		}
	}
	hb := detect.NewHeartbeat(clock.Real(), *timeout)
	leader.OnHeartbeat(hb.Beat)
	leader.Start()
	defer leader.Close()

	admin, err := coord.ServeAdmin(*adminAddr, leader)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer admin.Close()

	clients, err := coord.ServeClients(*clientAddr, leader, 10*time.Second)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer clients.Close()

	snap, err := leader.StartSnapshotService(*snapDir, *snapEvery, 2)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	defer snap.Close()
	log.Printf("coordd: leader up (clients on %s, admin on %s, follower=%q, snapshots in %s)",
		clients.Addr(), admin.Addr(), *leaderTo, *snapDir)

	shadow, err := wdio.NewFS(*shadowDir, 0)
	if err != nil {
		log.Fatalf("coordd: %v", err)
	}
	driver := watchdog.New(append([]watchdog.Option{
		watchdog.WithFactory(factory),
		watchdog.WithInterval(*interval),
		watchdog.WithTimeout(*timeout),
	}, hardeningOptions(*wdBreaker, *wdDamp, *wdHangCap)...)...)
	leader.InstallWatchdog(driver, shadow)
	driver.OnAlarm(func(a watchdog.Alarm) {
		log.Printf("WATCHDOG ALARM: %s", a.Report)
		if !a.Report.Site.IsZero() {
			log.Printf("  pinpoint: %s", a.Report.Site)
		}
	})
	if *obsAddr != "" {
		obs := wdobs.New()
		obs.Attach(driver)
		osrv, err := obs.Serve(*obsAddr)
		if err != nil {
			log.Fatalf("coordd: obs: %v", err)
		}
		defer osrv.Close()
		log.Printf("coordd: observability on http://%s", osrv.Addr())
	}
	driver.Start()
	defer driver.Stop()

	// Steady write traffic so the pipeline (and hooks) stay active.
	go func() {
		leader.SubmitWait(coord.OpCreate, "/app", []byte("root"), 5*time.Second)
		i := 0
		for {
			time.Sleep(500 * time.Millisecond)
			i++
			err := leader.SubmitWait(coord.OpSet, "/app", []byte{byte(i)}, 2*time.Second)
			if err != nil {
				log.Printf("coordd: write stalled: %v", err)
			}
		}
	}()

	// Periodic view of what the extrinsic detectors believe.
	go func() {
		for {
			time.Sleep(2 * time.Second)
			ruok := "imok"
			if err := coord.AdminRuok(admin.Addr()); err != nil {
				ruok = "FAIL"
			}
			log.Printf("coordd: heartbeat-suspect=%v admin=%s watchdog-healthy=%v",
				hb.Suspect(), ruok, driver.Healthy())
		}
	}()

	if *zk2201 {
		go func() {
			time.Sleep(*injectAfter)
			leader.Injector().Arm(coord.FaultSyncSend, faultinject.Fault{Kind: faultinject.Hang})
			log.Printf("coordd: ZK-2201 injected — follower sync now black-holes inside the commit lock")
		}()
	}

	waitForSignal()
	log.Print("coordd: shutting down")
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// hardeningOptions translates the -wd-breaker/-wd-damp/-wd-hang-budget flags
// into driver options; zero values leave the corresponding defense disabled.
func hardeningOptions(breaker int, damp time.Duration, hangBudget int) []watchdog.Option {
	var opts []watchdog.Option
	if breaker > 0 {
		opts = append(opts, watchdog.WithBreaker(watchdog.BreakerConfig{Threshold: breaker}))
	}
	if damp > 0 {
		opts = append(opts, watchdog.WithAlarmDamping(damp))
	}
	if hangBudget > 0 {
		opts = append(opts, watchdog.WithHangBudget(hangBudget))
	}
	return opts
}
